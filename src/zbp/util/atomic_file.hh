/**
 * @file
 * Durable atomic file publication: write to a same-directory temporary,
 * fsync the data, rename over the destination, then fsync the directory
 * so the rename itself survives a crash.
 *
 * Every "write a file other processes (or a post-crash re-run) will
 * read" path in the repo funnels through here: the content-addressed
 * trace cache, checkpoint snapshots, and any future sidecar publish.
 * The temporary lives in the destination's directory — never /tmp — so
 * the final rename can never fail with EXDEV (rename across
 * filesystems), and a crash mid-write leaves only a "<dest>.tmp.<pid>"
 * stray, never a torn destination.
 */

#ifndef ZBP_UTIL_ATOMIC_FILE_HH
#define ZBP_UTIL_ATOMIC_FILE_HH

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include "zbp/common/log.hh"

namespace zbp
{

/** Same-directory temporary path for an atomic publish of @p dest;
 * includes the pid so concurrent writers never collide on the tmp. */
inline std::string
atomicTmpPath(const std::string &dest)
{
    return dest + ".tmp." + std::to_string(static_cast<long>(::getpid()));
}

/** fsync the directory containing @p path so a completed rename is
 * durable.  Best-effort: some filesystems reject directory fsync; the
 * rename is still atomic, just not yet journalled. */
inline void
fsyncParentDir(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                    ? std::string(".")
                                    : path.substr(0, slash == 0 ? 1 : slash);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd < 0)
        return;
    ::fsync(dfd);
    ::close(dfd);
}

/**
 * Publish @p tmp (an already-written same-directory temporary, still
 * open nowhere) as @p dest: fsync the data, rename, fsync the
 * directory.  Returns false (with a warning and the tmp removed) on any
 * failure, so callers degrade to "no file published" rather than a torn
 * one.
 */
inline bool
publishFile(const std::string &tmp, const std::string &dest)
{
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd < 0) {
        warn("publishFile: cannot reopen ", tmp, " for fsync: ",
             std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    if (!synced) {
        warn("publishFile: fsync(", tmp, ") failed: ", std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), dest.c_str()) != 0) {
        warn("publishFile: rename ", tmp, " -> ", dest, " failed: ",
             std::strerror(errno));
        std::remove(tmp.c_str());
        return false;
    }
    fsyncParentDir(dest);
    return true;
}

/**
 * Atomically and durably replace @p dest with @p size bytes at
 * @p data.  Returns false (warned, nothing torn) on failure.
 */
inline bool
writeFileAtomic(const std::string &dest, const void *data, std::size_t size)
{
    const std::string tmp = atomicTmpPath(dest);
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        warn("writeFileAtomic: cannot open ", tmp, ": ",
             std::strerror(errno));
        return false;
    }
    const bool wrote = size == 0 || std::fwrite(data, 1, size, f) == size;
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed) {
        warn("writeFileAtomic: short write to ", tmp);
        std::remove(tmp.c_str());
        return false;
    }
    return publishFile(tmp, dest);
}

} // namespace zbp

#endif // ZBP_UTIL_ATOMIC_FILE_HH
