/**
 * @file
 * Open-addressing Addr -> value map for simulator-internal bookkeeping.
 *
 * std::unordered_map pays a heap node per insertion and a pointer chase
 * per lookup; on per-resolve paths (e.g. the surprise-install cycle
 * book) that malloc traffic is pure overhead — and it is invisible to
 * gprof, which does not sample shared-library time.  This table keeps
 * everything in one flat power-of-two array with linear probing and
 * grows by doubling at 70% load.  Only the operations the simulator
 * needs exist: assign, find, clear.
 */

#ifndef ZBP_UTIL_FLAT_ADDR_MAP_HH
#define ZBP_UTIL_FLAT_ADDR_MAP_HH

#include <cstdint>
#include <vector>

#include "zbp/common/log.hh"
#include "zbp/common/types.hh"

namespace zbp
{

/** Flat open-addressing map from Addr to @p V (V default-constructible). */
template <typename V>
class FlatAddrMap
{
  public:
    explicit FlatAddrMap(std::size_t min_capacity = 64)
    {
        std::size_t cap = 16;
        while (cap < min_capacity)
            cap <<= 1;
        slots.resize(cap);
    }

    /** Insert or overwrite the value for @p key. */
    void
    assign(Addr key, const V &value)
    {
        if ((count + 1) * 10 >= slots.size() * 7)
            grow();
        Slot &s = probe(key);
        if (!s.used) {
            s.used = true;
            s.key = key;
            ++count;
        }
        s.value = value;
    }

    /** Pointer to the value for @p key, or nullptr when absent. */
    const V *
    find(Addr key) const
    {
        const Slot &s = probe(key);
        return s.used ? &s.value : nullptr;
    }

    void
    clear()
    {
        for (auto &s : slots)
            s.used = false;
        count = 0;
    }

    std::size_t size() const { return count; }

    /** Visit every (key, value) pair in unspecified order (snapshot
     * serialization; re-population goes through assign()). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (const Slot &s : slots)
            if (s.used)
                fn(s.key, s.value);
    }

  private:
    struct Slot
    {
        Addr key = 0;
        V value{};
        bool used = false;
    };

    static std::size_t
    hashOf(Addr key)
    {
        // Fibonacci multiplicative mix; low bits become the probe start
        // after masking.
        return static_cast<std::size_t>(
                (key * 0x9E3779B97F4A7C15ull) >> 17);
    }

    /** The slot holding @p key, or the empty slot where it would go. */
    Slot &
    probe(Addr key)
    {
        const std::size_t mask = slots.size() - 1;
        std::size_t i = hashOf(key) & mask;
        while (slots[i].used && slots[i].key != key)
            i = (i + 1) & mask;
        return slots[i];
    }

    const Slot &
    probe(Addr key) const
    {
        return const_cast<FlatAddrMap *>(this)->probe(key);
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots);
        slots.assign(old.size() * 2, Slot{});
        count = 0;
        for (const Slot &s : old) {
            if (!s.used)
                continue;
            Slot &d = probe(s.key);
            ZBP_ASSERT(!d.used, "rehash collision on distinct keys");
            d = s;
            ++count;
        }
    }

    std::vector<Slot> slots;
    std::size_t count = 0;
};

} // namespace zbp

#endif // ZBP_UTIL_FLAT_ADDR_MAP_HH
