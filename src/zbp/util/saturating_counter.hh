/**
 * @file
 * N-bit saturating up/down counter — the bimodal direction state kept in
 * every BTB entry (2 bits on zEC12) and in the PHT.
 */

#ifndef ZBP_UTIL_SATURATING_COUNTER_HH
#define ZBP_UTIL_SATURATING_COUNTER_HH

#include <cstdint>

#include "zbp/common/log.hh"

namespace zbp
{

/** A @p Bits-bit saturating counter.  Values [0, 2^Bits - 1]; the upper
 * half predicts taken. */
template <unsigned Bits>
class SaturatingCounter
{
    static_assert(Bits >= 1 && Bits <= 8, "counter width out of range");

  public:
    static constexpr std::uint8_t kMax = (1u << Bits) - 1;
    /** Weakly-taken initial state, matching the convention of installing
     * newly seen taken branches as weakly taken. */
    static constexpr std::uint8_t kWeakTaken = 1u << (Bits - 1);
    static constexpr std::uint8_t kWeakNotTaken = kWeakTaken - 1;

    constexpr SaturatingCounter() = default;

    constexpr explicit SaturatingCounter(std::uint8_t v) : val(v)
    {
        ZBP_ASSERT(v <= kMax, "counter init out of range");
    }

    /** Predicted direction: true = taken. */
    constexpr bool taken() const { return val >= kWeakTaken; }

    /** True when saturated at either rail (strong state). */
    constexpr bool strong() const { return val == 0 || val == kMax; }

    /** Train toward @p was_taken. */
    constexpr void
    update(bool was_taken)
    {
        if (was_taken) {
            if (val < kMax)
                ++val;
        } else {
            if (val > 0)
                --val;
        }
    }

    constexpr std::uint8_t raw() const { return val; }

    constexpr void
    set(std::uint8_t v)
    {
        ZBP_ASSERT(v <= kMax, "counter set out of range");
        val = v;
    }

    constexpr bool
    operator==(const SaturatingCounter &o) const
    {
        return val == o.val;
    }

  private:
    std::uint8_t val = kWeakNotTaken;
};

/** The 2-bit bimodal BHT state stored per BTB entry on zEC12. */
using Bimodal2 = SaturatingCounter<2>;

} // namespace zbp

#endif // ZBP_UTIL_SATURATING_COUNTER_HH
