/**
 * @file
 * Fixed-capacity inline vector over raw storage.
 *
 * The search hot path returns hit/candidate lists by value many million
 * times per simulated second, and almost all of them stay empty (the
 * rowSig prefilter rejects most probes).  A std::array of elements with
 * default member initializers would value-initialize the whole buffer
 * on every construction — hundreds of bytes of stores per probe for
 * lists that then hold nothing.  InlineVec keeps the payload in
 * uninitialized byte storage: constructing one writes a single size
 * field, and elements are copied in only when actually pushed.
 *
 * Restricted to trivially copyable, trivially destructible element
 * types (the element planes are memmoved on insert).
 */

#ifndef ZBP_UTIL_INLINE_VEC_HH
#define ZBP_UTIL_INLINE_VEC_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>

#include "zbp/common/log.hh"

namespace zbp
{

template <typename T, std::size_t N>
class InlineVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "InlineVec elements are memmoved");
    static_assert(std::is_trivially_destructible_v<T>,
                  "InlineVec never runs element destructors");

  public:
    static constexpr std::size_t kCapacity = N;

    using const_iterator = const T *;

    std::size_t size() const { return n; }
    bool empty() const { return n == 0; }

    const T &operator[](std::size_t i) const { return data()[i]; }

    const_iterator begin() const { return data(); }
    const_iterator end() const { return data() + n; }

    void
    push_back(const T &v)
    {
        ZBP_ASSERT(n < N, "InlineVec overflow");
        new (buf + n * sizeof(T)) T(v);
        ++n;
    }

    /** Insert @p v before position @p pos, shifting the tail up. */
    void
    insertAt(std::size_t pos, const T &v)
    {
        ZBP_ASSERT(pos <= n && n < N, "InlineVec overflow");
        if (pos < n)
            std::memmove(buf + (pos + 1) * sizeof(T),
                         buf + pos * sizeof(T), (n - pos) * sizeof(T));
        new (buf + pos * sizeof(T)) T(v);
        ++n;
    }

  private:
    const T *
    data() const
    {
        return std::launder(reinterpret_cast<const T *>(buf));
    }

    alignas(T) std::byte buf[N * sizeof(T)];
    std::size_t n = 0;
};

} // namespace zbp

#endif // ZBP_UTIL_INLINE_VEC_HH
