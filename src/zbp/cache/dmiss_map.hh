/**
 * @file
 * Precomputed L1 D-cache outcome map for the fused sweep path.
 *
 * The core model issues exactly one D-cache access per trace
 * instruction carrying an operand address, in trace order, and the
 * cache's hit/miss outcome is a pure function of that address sequence
 * and the cache geometry (ICache::access consults `now` only for the
 * per-block miss records, which nothing ever reads on the D-side).  A
 * gang of configurations sharing one trace therefore replays byte-for-
 * byte identical D-cache simulations; computing the outcome stream once
 * per (trace, geometry) and handing every gang member the read-only map
 * deletes that redundant work without changing a single counter.
 */

#ifndef ZBP_CACHE_DMISS_MAP_HH
#define ZBP_CACHE_DMISS_MAP_HH

#include <cstdint>
#include <vector>

#include "zbp/cache/icache.hh"
#include "zbp/trace/trace.hh"

namespace zbp::cache
{

/**
 * Simulate an L1 D-cache of geometry @p p over the operand-address
 * stream of @p t.  Returns one byte per instruction: 1 where the access
 * would miss, 0 on a hit or when the instruction has no operand
 * address.  Bit-identical to feeding the same trace through
 * ICache::access instruction by instruction.
 */
std::vector<std::uint8_t> computeDataMissMap(const trace::Trace &t,
                                             const ICacheParams &p);

/** Do two geometries produce identical outcome maps for every trace?
 * (Latency knobs do not affect hit/miss, only how a miss is charged.) */
inline bool
sameDataMissGeometry(const ICacheParams &a, const ICacheParams &b)
{
    return a.sizeBytes == b.sizeBytes && a.ways == b.ways &&
           a.lineBytes == b.lineBytes;
}

} // namespace zbp::cache

#endif // ZBP_CACHE_DMISS_MAP_HH
