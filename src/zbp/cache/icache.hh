/**
 * @file
 * First-level instruction cache model.
 *
 * The paper's methodology models the L1 caches as finite and everything
 * beyond as infinite (every L1 miss is an L2 hit with fixed latency).
 * The zEC12 L1 I-cache is 64 KB 4-way (Table 5); z-series line size is
 * 256 bytes.  Besides hit/miss, the cache records *recent misses per
 * 4 KB block* because the BTB2 transfer filter (paper §3.5) asks "did
 * this perceived BTB1 miss also have an instruction cache miss in the
 * same 4 KB block?".
 */

#ifndef ZBP_CACHE_ICACHE_HH
#define ZBP_CACHE_ICACHE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "zbp/ckpt/ckpt.hh"
#include "zbp/common/bitfield.hh"
#include "zbp/common/types.hh"
#include "zbp/stats/stats.hh"
#include "zbp/util/lru.hh"

namespace zbp::cache
{

/** Geometry and latency knobs for an L1 cache (used for both the
 * instruction cache and, with dcacheParams(), the data cache). */
struct ICacheParams
{
    std::uint32_t sizeBytes = 64 * 1024;
    std::uint32_t ways = 4;
    std::uint32_t lineBytes = 256;
    /** Cycles from miss detection to line available (infinite L2 hit,
     * paper §4). */
    std::uint32_t missLatency = 14;
    /** How long (cycles) a block-granular miss record stays live for the
     * BTB2 filter. */
    std::uint32_t missRecordTtl = 2000;
};

/** zEC12 L1 D-cache geometry (Table 5): 96 KB, 6-way. */
inline ICacheParams
dcacheParams()
{
    ICacheParams p;
    p.sizeBytes = 96 * 1024;
    p.ways = 6;
    p.lineBytes = 256;
    p.missLatency = 12;
    return p;
}

/** Set-associative I-cache with per-4KB-block miss recording. */
class ICache
{
  public:
    explicit ICache(const ICacheParams &p);

    /**
     * Access the line containing @p addr at time @p now.
     * On a miss the line is installed immediately (the caller models the
     * latency) and the 4 KB block of @p addr is recorded as having
     * missed at @p now.
     *
     * @return true on hit.
     */
    bool access(Addr addr, Cycle now);

    /** Probe without updating replacement state or installing. */
    bool probe(Addr addr) const;

    /**
     * Account one access whose outcome was precomputed (dmiss_map.hh)
     * without replaying the array lookup: bumps the same hit/miss
     * counters access() would.  Line and replacement state are left
     * untouched — valid only when nothing reads them back, as on the
     * D-cache, whose per-block miss records have no consumer.
     */
    void
    recordPrecomputed(bool hit)
    {
        if (hit)
            ++nHits;
        else
            ++nMisses;
    }

    /**
     * BTB2 filter query: did any I-cache miss occur in the 4 KB block of
     * @p addr within the record TTL ending at @p now?
     */
    bool blockMissedRecently(Addr addr, Cycle now) const;

    /** Invalidate everything (used between benchmark repetitions). */
    void reset();

    /** Serialize lines + LRU + miss records into one checkpoint
     * section. */
    void saveState(ckpt::Writer &w) const;

    /** Overwrite from a checkpoint section; throws ckpt::CkptError on
     * geometry mismatch or corrupt LRU state. */
    void restoreState(ckpt::Reader &r);

    const ICacheParams &params() const { return prm; }

    std::uint64_t hits() const { return nHits.value(); }
    std::uint64_t misses() const { return nMisses.value(); }

    void
    registerStats(stats::Group &g) const
    {
        g.add("hits", nHits, "I-cache line hits");
        g.add("misses", nMisses, "I-cache line misses");
    }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    ICacheParams prm;
    std::uint32_t numSets;
    unsigned lineShift;           ///< log2(lineBytes)
    unsigned setShift;            ///< log2(numSets)
    std::vector<Line> lines;      ///< numSets * ways, row-major
    std::vector<LruState> lru;    ///< one per set

    /** 4 KB block number -> cycle of most recent miss in that block. */
    std::unordered_map<Addr, Cycle> blockMiss;

    stats::Counter nHits;
    stats::Counter nMisses;
};

} // namespace zbp::cache

#endif // ZBP_CACHE_ICACHE_HH
