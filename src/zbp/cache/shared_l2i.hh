/**
 * @file
 * SharedL2I — a shared second-level instruction cache for the CMP model.
 *
 * The single-core methodology (paper §4) models the L1I as finite and
 * everything behind it as an infinite L2 with fixed latency.  With N
 * cores that abstraction hides the second sharing effect the CMP model
 * exists to measure: cores with overlapping instruction footprints warm
 * a shared L2I for each other (constructive), disjoint footprints thrash
 * it (destructive) — exactly the axis the shared BTB2 is evaluated on.
 *
 * The model stays deliberately simple: one ICache instance with L2-like
 * geometry, probed on every per-core L1I miss.  An L2 hit costs the
 * plain L1 miss latency; an L2 miss costs the L2I's (larger) latency.
 * No banking or port contention — front-end fetch rates make L2I port
 * conflicts second-order next to BTB2 read-port conflicts, and the
 * arbiter already models the latter.  Cores step sequentially on one
 * thread, so no locking either.
 *
 * Off by default (CmpParams::sharedL2i): with it off, a CMP core's miss
 * path is byte-for-byte the single-core one, which the N=1 golden
 * equivalence test requires.
 */

#ifndef ZBP_CACHE_SHARED_L2I_HH
#define ZBP_CACHE_SHARED_L2I_HH

#include <algorithm>
#include <vector>

#include "zbp/cache/icache.hh"

namespace zbp::cache
{

class SharedL2I
{
  public:
    SharedL2I(const ICacheParams &p, unsigned cores)
        : array(p), hitsBy(cores, 0), missesBy(cores, 0)
    {
    }

    /**
     * Look up the line of @p addr on behalf of @p core after an L1I
     * miss at local time @p now; installs on miss.
     *
     * @return the full miss latency the core should charge: the L1's
     * @p l1_miss_latency on an L2 hit, the L2I's on an L2 miss.
     */
    std::uint32_t
    fetchMiss(unsigned core, Addr addr, Cycle now,
              std::uint32_t l1_miss_latency)
    {
        if (array.access(addr, now)) {
            ++hitsBy[core];
            return l1_miss_latency;
        }
        ++missesBy[core];
        return array.params().missLatency;
    }

    void
    reset()
    {
        array.reset();
        std::fill(hitsBy.begin(), hitsBy.end(), 0);
        std::fill(missesBy.begin(), missesBy.end(), 0);
    }

    /** Serialize array state + per-core tallies into checkpoint
     * sections (the ICache writes its own section first). */
    void
    saveState(ckpt::Writer &w) const
    {
        array.saveState(w);
        w.beginSection(ckpt::tag::kSharedL2I);
        w.putU32(static_cast<std::uint32_t>(hitsBy.size()));
        for (std::size_t c = 0; c < hitsBy.size(); ++c) {
            w.putU64(hitsBy[c]);
            w.putU64(missesBy[c]);
        }
        w.endSection();
    }

    /** Overwrite from checkpoint sections; throws ckpt::CkptError on a
     * core-count mismatch. */
    void
    restoreState(ckpt::Reader &r)
    {
        array.restoreState(r);
        r.openSection(ckpt::tag::kSharedL2I);
        if (r.getU32() != hitsBy.size())
            throw ckpt::CkptError("shared L2I core count mismatch");
        for (std::size_t c = 0; c < hitsBy.size(); ++c) {
            hitsBy[c] = r.getU64();
            missesBy[c] = r.getU64();
        }
        r.closeSection();
    }

    std::uint64_t hits() const { return array.hits(); }
    std::uint64_t misses() const { return array.misses(); }
    const std::vector<std::uint64_t> &coreHits() const { return hitsBy; }
    const std::vector<std::uint64_t> &coreMisses() const { return missesBy; }
    const ICacheParams &params() const { return array.params(); }

  private:
    ICache array;
    std::vector<std::uint64_t> hitsBy;
    std::vector<std::uint64_t> missesBy;
};

} // namespace zbp::cache

#endif // ZBP_CACHE_SHARED_L2I_HH
