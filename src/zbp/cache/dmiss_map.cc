#include "zbp/cache/dmiss_map.hh"

namespace zbp::cache
{

std::vector<std::uint8_t>
computeDataMissMap(const trace::Trace &t, const ICacheParams &p)
{
    ICache c(p);
    std::vector<std::uint8_t> map(t.size(), 0);
    for (std::size_t i = 0; i < t.size(); ++i) {
        const Addr a = t[i].dataAddr;
        if (a != kNoAddr)
            map[i] = c.access(a, 0) ? 0 : 1;
    }
    return map;
}

} // namespace zbp::cache
