#include "zbp/cache/icache.hh"

namespace zbp::cache
{

ICache::ICache(const ICacheParams &p) : prm(p)
{
    ZBP_ASSERT(isPowerOf2(prm.lineBytes), "line size must be pow2");
    ZBP_ASSERT(prm.ways >= 1, "need at least one way");
    ZBP_ASSERT(prm.sizeBytes % (prm.lineBytes * prm.ways) == 0,
               "size not divisible by line*ways");
    numSets = prm.sizeBytes / (prm.lineBytes * prm.ways);
    ZBP_ASSERT(isPowerOf2(numSets), "set count must be pow2");
    lineShift = floorLog2(prm.lineBytes);
    setShift = floorLog2(numSets);
    lines.resize(static_cast<std::size_t>(numSets) * prm.ways);
    lru.reserve(numSets);
    for (std::uint32_t s = 0; s < numSets; ++s)
        lru.emplace_back(prm.ways);
}

std::uint64_t
ICache::setIndex(Addr addr) const
{
    return (addr >> lineShift) & (numSets - 1);
}

Addr
ICache::tagOf(Addr addr) const
{
    return addr >> (lineShift + setShift);
}

bool
ICache::probe(Addr addr) const
{
    const auto set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *row = &lines[set * prm.ways];
    for (std::uint32_t w = 0; w < prm.ways; ++w)
        if (row[w].valid && row[w].tag == tag)
            return true;
    return false;
}

bool
ICache::access(Addr addr, Cycle now)
{
    const auto set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *row = &lines[set * prm.ways];
    for (std::uint32_t w = 0; w < prm.ways; ++w) {
        if (row[w].valid && row[w].tag == tag) {
            lru[set].touch(w);
            ++nHits;
            return true;
        }
    }

    // Miss: install into the LRU way and record the 4 KB block.
    const unsigned victim = lru[set].lru();
    row[victim].valid = true;
    row[victim].tag = tag;
    lru[set].touch(victim);
    blockMiss[addr >> 12] = now;
    ++nMisses;
    return false;
}

bool
ICache::blockMissedRecently(Addr addr, Cycle now) const
{
    const auto it = blockMiss.find(addr >> 12);
    if (it == blockMiss.end())
        return false;
    return now >= it->second && now - it->second <= prm.missRecordTtl;
}

void
ICache::reset()
{
    for (auto &l : lines)
        l.valid = false;
    blockMiss.clear();
}

void
ICache::saveState(ckpt::Writer &w) const
{
    w.beginSection(ckpt::tag::kICache);
    w.putU32(numSets);
    w.putU32(prm.ways);
    w.putU32(prm.lineBytes);
    for (const Line &l : lines) {
        w.putBool(l.valid);
        w.putU64(l.tag);
    }
    for (const LruState &s : lru)
        for (unsigned i = 0; i < prm.ways; ++i)
            w.putU8(static_cast<std::uint8_t>(s.orderAt(i)));
    w.putU64(blockMiss.size());
    for (const auto &[block, cycle] : blockMiss) {
        w.putU64(block);
        w.putU64(cycle);
    }
    w.putU64(nHits.value());
    w.putU64(nMisses.value());
    w.endSection();
}

void
ICache::restoreState(ckpt::Reader &r)
{
    r.openSection(ckpt::tag::kICache);
    if (r.getU32() != numSets || r.getU32() != prm.ways ||
        r.getU32() != prm.lineBytes)
        throw ckpt::CkptError("I-cache geometry mismatch");
    std::vector<Line> fresh(lines.size());
    for (Line &l : fresh) {
        l.valid = r.getBool();
        l.tag = r.getU64();
    }
    std::vector<LruState> lr(lru);
    for (LruState &s : lr) {
        std::uint8_t order[LruState::kMaxWays];
        for (unsigned i = 0; i < prm.ways; ++i)
            order[i] = r.getU8();
        if (!s.setOrder(order, prm.ways))
            throw ckpt::CkptError("I-cache LRU state is not a permutation");
    }
    const std::uint64_t n = r.getU64();
    std::unordered_map<Addr, Cycle> bm;
    bm.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        const Addr block = r.getU64();
        bm[block] = r.getU64();
    }
    const std::uint64_t hits = r.getU64();
    const std::uint64_t misses = r.getU64();
    r.closeSection();
    lines = std::move(fresh);
    lru = std::move(lr);
    blockMiss = std::move(bm);
    nHits.reset();
    nHits += hits;
    nMisses.reset();
    nMisses += misses;
}

} // namespace zbp::cache
