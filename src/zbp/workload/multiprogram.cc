#include "zbp/workload/multiprogram.hh"

#include "zbp/common/log.hh"

namespace zbp::workload
{

trace::Trace
multiprogram(const std::vector<trace::Trace> &threads,
             std::uint64_t quantum, const std::string &name)
{
    ZBP_ASSERT(!threads.empty(), "no threads to interleave");
    ZBP_ASSERT(quantum >= 1, "quantum must be at least 1");

    trace::Trace out(name);
    std::uint64_t total = 0;
    for (const auto &t : threads)
        total += t.size();
    out.reserve(total + total / quantum + 8);

    std::vector<std::size_t> pos(threads.size(), 0);
    std::size_t cur = 0;
    std::size_t exhausted = 0;
    for (const auto &t : threads)
        exhausted += t.empty() ? 1 : 0;

    while (exhausted < threads.size()) {
        const trace::Trace &t = threads[cur];
        std::size_t &p = pos[cur];
        if (p < t.size()) {
            const std::size_t end =
                    std::min<std::size_t>(p + quantum, t.size());
            for (; p < end; ++p)
                out.push(t[p]);
            if (p >= t.size())
                ++exhausted;
        }

        // Find the next runnable thread.
        std::size_t next = cur;
        for (std::size_t i = 1; i <= threads.size(); ++i) {
            const std::size_t cand = (cur + i) % threads.size();
            if (pos[cand] < threads[cand].size()) {
                next = cand;
                break;
            }
        }
        if (next == cur) {
            if (p >= t.size())
                break; // everything drained
            continue;  // sole runnable thread: no switch, no glue
        }

        // Synthetic dispatcher branch gluing the two slices together.
        if (!out.empty() && pos[next] < threads[next].size()) {
            trace::Instruction glue;
            glue.ia = out[out.size() - 1].nextIa();
            glue.length = 4;
            glue.kind = trace::InstKind::kIndirect;
            glue.taken = true;
            glue.target = threads[next][pos[next]].ia;
            out.push(glue);
        }
        cur = next;
    }
    return out;
}

} // namespace zbp::workload
