#include "zbp/workload/program_builder.hh"

#include <algorithm>

#include "zbp/common/bitfield.hh"
#include "zbp/common/log.hh"
#include "zbp/common/rng.hh"

namespace zbp::workload
{

namespace
{

/** Draw a z-like instruction length: mix of 2/4/6 bytes. */
std::uint8_t
drawLength(Rng &rng)
{
    const auto r = rng.below(100);
    if (r < 25)
        return 2;
    if (r < 65)
        return 4;
    return 6;
}

/** Pick a forward block target in (cur, blocks), biased to nearby. */
std::uint32_t
pickForward(Rng &rng, std::uint32_t cur, std::uint32_t blocks)
{
    ZBP_ASSERT(cur + 1 < blocks, "no forward target available");
    const std::uint32_t span = blocks - cur - 1;
    // Near-target bias: square the uniform draw.
    const double u = rng.uniform();
    auto skip = static_cast<std::uint32_t>(u * u * span);
    if (skip >= span)
        skip = span - 1;
    return cur + 1 + skip;
}

/** Assign a biased-conditional behaviour. */
void
makeConditional(Rng &rng, const BuildParams &p, Terminator &t)
{
    t.kind = trace::InstKind::kCondBranch;
    const double u = rng.uniform();
    if (u < p.periodicFraction) {
        t.cond = CondBehavior::kPeriodic;
        t.period = static_cast<std::uint16_t>(rng.range(2, 6));
    } else if (u < p.periodicFraction + p.flakyFraction) {
        t.cond = CondBehavior::kBiased;
        t.takenProb = static_cast<float>(0.30 + 0.40 * rng.uniform());
    } else {
        t.cond = CondBehavior::kBiased;
        // Strongly biased either way; taken-bias slightly more common,
        // as in commercial codes.
        const double p_taken = rng.chance(0.55)
                ? 0.975 + 0.023 * rng.uniform()
                : 0.002 + 0.023 * rng.uniform();
        t.takenProb = static_cast<float>(p_taken);
    }
}

} // namespace

Program
buildProgram(const BuildParams &p)
{
    ZBP_ASSERT(p.numFunctions >= 1, "need at least one function");
    ZBP_ASSERT(p.minBlocksPerFunction >= 2,
               "functions need an entry block and a return block");
    ZBP_ASSERT(p.maxBlocksPerFunction >= p.minBlocksPerFunction &&
               p.maxInstsPerBlock >= p.minInstsPerBlock,
               "inverted block-count or block-size range");
    ZBP_ASSERT(isPowerOf2(p.functionAlign), "functionAlign not pow2");

    Rng rng(p.seed);
    Program prog;
    prog.functions.resize(p.numFunctions);

    Addr cursor = p.base;
    for (std::uint32_t fi = 0; fi < p.numFunctions; ++fi) {
        Function &fn = prog.functions[fi];
        const auto blocks = static_cast<std::uint32_t>(
                rng.range(p.minBlocksPerFunction, p.maxBlocksPerFunction));
        fn.blocks.resize(blocks);

        if (fi != 0 && p.moduleSize != 0 && fi % p.moduleSize == 0)
            cursor += p.moduleGapBytes;
        cursor = alignUp(cursor, p.functionAlign);

        // First pass: instruction lengths and layout.
        for (std::uint32_t bi = 0; bi < blocks; ++bi) {
            BasicBlock &bb = fn.blocks[bi];
            bb.start = cursor;
            const auto insts = static_cast<std::uint32_t>(
                    rng.range(p.minInstsPerBlock, p.maxInstsPerBlock));
            bb.lengths.resize(insts);
            for (auto &len : bb.lengths)
                len = drawLength(rng);
            cursor += bb.byteSize();
        }

        // Second pass: terminators.
        for (std::uint32_t bi = 0; bi < blocks; ++bi) {
            Terminator &t = fn.blocks[bi].term;
            if (bi == blocks - 1) {
                t.kind = trace::InstKind::kReturn;
                continue;
            }

            const double u = rng.uniform();
            double acc = p.callFraction;
            const bool can_call = fi + 1 < p.numFunctions;
            const bool can_loop = bi >= 1;
            if (u < acc && can_call) {
                t.kind = trace::InstKind::kCall;
                // Callee strictly deeper in the function list (DAG), with
                // strong locality: usually a nearby function.
                const std::uint64_t lo = fi + 1;
                const std::uint64_t hi = p.numFunctions - 1;
                const std::uint64_t near = lo +
                        rng.below(std::min<std::uint64_t>(hi - lo + 1, 20));
                t.target = static_cast<std::uint32_t>(
                        rng.chance(0.65) ? near : rng.range(lo, hi));
                continue;
            }
            acc += p.uncondFraction;
            if (u < acc) {
                t.kind = trace::InstKind::kUncondBranch;
                t.target = pickForward(rng, bi, blocks);
                continue;
            }
            acc += p.indirectFraction;
            if (u < acc && bi + 2 < blocks) {
                t.kind = trace::InstKind::kIndirect;
                const auto fanout = static_cast<std::uint32_t>(
                        rng.range(2, 6));
                for (std::uint32_t k = 0; k < fanout; ++k)
                    t.targets.push_back(pickForward(rng, bi, blocks));
                continue;
            }
            acc += p.loopFraction;
            if (u < acc && can_loop) {
                // Loop back a short distance, but never around a call
                // block: loops enclosing calls multiply the callee work
                // per iteration and make transaction sizes explode.
                std::uint32_t tgt = bi - static_cast<std::uint32_t>(
                        rng.below(std::min<std::uint64_t>(bi, 3) + 1));
                while (tgt < bi &&
                       std::any_of(fn.blocks.begin() + tgt,
                                   fn.blocks.begin() + bi,
                                   [](const BasicBlock &b) {
                                       return b.term.kind ==
                                              trace::InstKind::kCall;
                                   })) {
                    ++tgt;
                }
                t.kind = trace::InstKind::kCondBranch;
                t.cond = CondBehavior::kLoop;
                t.target = tgt;
                t.loopTrip = static_cast<std::uint16_t>(
                        rng.range(p.minLoopTrip, p.maxLoopTrip));
                continue;
            }
            makeConditional(rng, p, t);
            t.target = pickForward(rng, bi, blocks);
        }
    }
    return prog;
}

} // namespace zbp::workload
