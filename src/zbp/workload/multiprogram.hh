/**
 * @file
 * Time-sliced multiprogramming: interleave several single-thread traces
 * into one consistent trace, modelling round-robin context switching on
 * one core.
 *
 * Used by the Figure 3 hardware proxy: the paper's Web CICS/DB2
 * measurement ran on 4 cores; lacking a multi-core model we approximate
 * the capacity pressure of multiple address spaces sharing predictor
 * state by time-slicing 4 instance traces on one core (see DESIGN.md).
 *
 * At every quantum boundary a synthetic taken indirect branch (the "OS
 * dispatcher") is inserted at the fall-through address of the previous
 * instruction, targeting the next thread's resume point, so the result
 * still satisfies Trace::consistent().
 */

#ifndef ZBP_WORKLOAD_MULTIPROGRAM_HH
#define ZBP_WORKLOAD_MULTIPROGRAM_HH

#include <cstdint>
#include <vector>

#include "zbp/trace/trace.hh"

namespace zbp::workload
{

/**
 * Round-robin interleave of @p threads with @p quantum instructions per
 * time slice.  Thread address spaces should be disjoint (generate each
 * with a different BuildParams::base) or the predictors will share
 * entries across threads, which may even be desired for aliasing
 * studies.
 */
trace::Trace multiprogram(const std::vector<trace::Trace> &threads,
                          std::uint64_t quantum,
                          const std::string &name);

} // namespace zbp::workload

#endif // ZBP_WORKLOAD_MULTIPROGRAM_HH
