#include "zbp/workload/generator.hh"

#include <unordered_map>
#include <vector>

#include "zbp/common/log.hh"
#include "zbp/common/rng.hh"

namespace zbp::workload
{

namespace
{

/** One call-stack frame of the walker. */
struct Frame
{
    std::uint32_t funcIdx;
    std::uint32_t block;
    Addr returnTo;
};

/** The walker: executes the program, emitting instructions. */
class Walker
{
  public:
    Walker(const Program &prog_, const GenParams &gp_, trace::Trace &out_)
        : prog(prog_), gp(gp_), out(out_), rng(gp_.seed)
    {
        ZBP_ASSERT(!prog.functions.empty(), "empty program");
        const auto f = static_cast<std::uint32_t>(prog.functions.size());
        std::uint32_t num_roots = gp.numRoots == 0 ? f : gp.numRoots;
        if (num_roots > f)
            num_roots = f;
        roots.reserve(num_roots);
        for (std::uint32_t i = 0; i < num_roots; ++i)
            roots.push_back(i * f / num_roots);
    }

    void
    run()
    {
        out.reserve(gp.length + 64);
        while (out.size() < gp.length) {
            dispatchOnce();
        }
    }

  private:
    void
    emit(Addr ia, std::uint8_t len, trace::InstKind kind, bool taken,
         Addr target)
    {
        trace::Instruction inst;
        inst.ia = ia;
        inst.length = len;
        inst.kind = kind;
        inst.taken = taken;
        inst.target = taken ? target : kNoAddr;
        out.push(inst);
    }

    void
    emitPlain(Addr ia, std::uint8_t len)
    {
        emit(ia, len, trace::InstKind::kNonBranch, false, kNoAddr);
        if (gp.dataAccessFraction > 0.0 &&
            rng.chance(gp.dataAccessFraction)) {
            out.back().dataAddr = drawDataAddr();
        }
    }

    /** Synthesize an operand address: mostly frame-local, often in the
     * transaction root's private region, sometimes in the shared pool
     * (the classic OLTP mix: locals, session state, shared tables). */
    Addr
    drawDataAddr()
    {
        const auto kind = rng.below(100);
        if (kind < 45) {
            // Current stack frame (depth tracked by the walker).
            return gp.stackBase - Addr{curDepth} * 256 +
                   rng.below(192 / 8) * 8;
        }
        const Addr region = gp.heapBase +
                Addr{curRoot} * gp.heapRegionBytes;
        if (kind < 75) {
            // Hot head of the transaction's private region (~2 KB).
            return region + rng.below(2048 / 8) * 8;
        }
        if (kind < 83) {
            // Cold spread over the whole private region.
            return region + rng.below(gp.heapRegionBytes / 8) * 8;
        }
        const Addr shared = gp.heapBase + (Addr{1} << 44);
        if (kind < 95) {
            // Hot shared state (~4 KB: latches, counters, root pages).
            return shared + rng.below(4096 / 8) * 8;
        }
        return shared + rng.below(gp.sharedHeapBytes / 8) * 8;
    }

    std::uint32_t
    pickRoot()
    {
        const auto n = static_cast<std::uint32_t>(roots.size());
        std::uint32_t hot = std::min(gp.hotRoots, n);
        if (hot == 0)
            hot = 1;
        std::uint64_t start = 0;
        if (gp.phaseLength != 0) {
            const std::uint64_t phase = out.size() / gp.phaseLength;
            start = (phase * gp.phaseStride) % n;
        }
        const auto pick = rng.zipfish(hot, gp.rootSkew);
        return roots[(start + pick) % n];
    }

    /** Run the dispatcher loop body once: call one transaction root. */
    void
    dispatchOnce()
    {
        const Addr d = gp.dispatcherBase;
        emitPlain(d, 4);
        const std::uint32_t root = pickRoot();
        const Addr root_entry = prog.functions[root].entry();
        emit(d + 4, 4, trace::InstKind::kCall, true, root_entry);
        txnStart = out.size();
        curRoot = root;
        walkFunction(root, /*return_to=*/d + 8);
        if (out.size() >= gp.length)
            return;
        emitPlain(d + 8, 4);
        emit(d + 12, 4, trace::InstKind::kUncondBranch, true, d);
    }

    /** Execute @p func to completion (or budget exhaustion). */
    void
    walkFunction(std::uint32_t func, Addr return_to)
    {
        std::vector<Frame> stack;
        stack.push_back({func, 0, return_to});

        while (!stack.empty() && out.size() < gp.length) {
            curDepth = static_cast<std::uint32_t>(stack.size());
            Frame &fr = stack.back();
            const Function &fn = prog.functions[fr.funcIdx];
            const BasicBlock &bb = fn.blocks[fr.block];

            // Straight-line body.
            Addr ia = bb.start;
            for (std::size_t i = 0; i + 1 < bb.lengths.size(); ++i) {
                emitPlain(ia, bb.lengths[i]);
                ia += bb.lengths[i];
            }

            const std::uint8_t tlen = bb.lengths.back();
            const Terminator &t = bb.term;
            ZBP_ASSERT(ia == bb.termIa(), "layout mismatch");

            switch (t.kind) {
              case trace::InstKind::kNonBranch:
                // Fallthrough block: terminator slot is a plain inst.
                emitPlain(ia, tlen);
                fr.block += 1;
                break;

              case trace::InstKind::kCondBranch: {
                const bool taken = decideConditional(ia, t);
                const Addr tgt = fn.blocks[t.target].start;
                emit(ia, tlen, t.kind, taken, tgt);
                fr.block = taken ? t.target : fr.block + 1;
                break;
              }

              case trace::InstKind::kUncondBranch: {
                const Addr tgt = fn.blocks[t.target].start;
                emit(ia, tlen, t.kind, true, tgt);
                fr.block = t.target;
                break;
              }

              case trace::InstKind::kIndirect: {
                const auto pick = rng.zipfish(t.targets.size(), 1.0);
                const std::uint32_t tb = t.targets[pick];
                emit(ia, tlen, t.kind, true, fn.blocks[tb].start);
                fr.block = tb;
                break;
              }

              case trace::InstKind::kCall: {
                const std::uint32_t callee = t.target;
                ZBP_ASSERT(callee > fr.funcIdx &&
                           callee < prog.functions.size(),
                           "call DAG violated");
                // Bound transaction size: deep in the stack, or once
                // the transaction budget is spent, the call site
                // degenerates to a taken branch to its fallthrough
                // (think devirtualized/guarded call) so the walk winds
                // down instead of exploding.
                if (stack.size() >= gp.maxCallDepth ||
                    out.size() - txnStart >= gp.maxTransactionInsts) {
                    emit(ia, tlen, t.kind, true, ia + tlen);
                    fr.block += 1;
                    break;
                }
                const Addr callee_entry =
                        prog.functions[callee].entry();
                emit(ia, tlen, t.kind, true, callee_entry);
                // Caller resumes at the next block.
                fr.block += 1;
                stack.push_back({callee, 0, ia + tlen});
                break;
              }

              case trace::InstKind::kReturn: {
                emit(ia, tlen, t.kind, true, fr.returnTo);
                stack.pop_back();
                break;
              }
            }
        }
    }

    bool
    decideConditional(Addr site, const Terminator &t)
    {
        switch (t.cond) {
          case CondBehavior::kBiased:
            return rng.chance(t.takenProb);
          case CondBehavior::kPeriodic: {
            const auto cnt = periodicCount[site]++;
            return (cnt % t.period) != 0;
          }
          case CondBehavior::kLoop: {
            auto it = loopRemaining.find(site);
            if (it == loopRemaining.end() || it->second == 0)
                it = loopRemaining.insert_or_assign(site,
                                                    t.loopTrip).first;
            it->second -= 1;
            return it->second > 0;
          }
        }
        panic("unreachable conditional behaviour");
    }

    const Program &prog;
    const GenParams &gp;
    trace::Trace &out;
    Rng rng;
    std::uint64_t txnStart = 0;
    std::uint32_t curRoot = 0;
    std::uint32_t curDepth = 0;
    std::vector<std::uint32_t> roots;
    std::unordered_map<Addr, std::uint32_t> periodicCount;
    std::unordered_map<Addr, std::uint32_t> loopRemaining;
};

} // namespace

trace::Trace
generateTrace(const Program &prog, const GenParams &gp,
              const std::string &name)
{
    trace::Trace t(name);
    Walker walker(prog, gp, t);
    walker.run();
    return t;
}

} // namespace zbp::workload
