/**
 * @file
 * Static control-flow model for synthetic workload generation.
 *
 * The paper evaluates on proprietary IBM traces (LSPR, Trade6, DayTrader,
 * TPF, ...).  We substitute parameterized synthetic programs: a Program
 * is a set of Functions laid out in a 64-bit address space; each Function
 * is a list of BasicBlocks; each block is a run of straight-line
 * instructions ended by a terminator whose *behaviour* (bias, loop trip
 * count, target set) is part of the static model, so a deterministic
 * walker can produce a control-flow-consistent dynamic trace.
 *
 * The structural properties the BTB2 is sensitive to — number of unique
 * (taken) branch sites, 4 KB-block locality, quartile/sector reference
 * patterns, working-set rotation — are all explicit parameters.
 */

#ifndef ZBP_WORKLOAD_CFG_HH
#define ZBP_WORKLOAD_CFG_HH

#include <cstdint>
#include <vector>

#include "zbp/common/types.hh"
#include "zbp/trace/instruction.hh"

namespace zbp::workload
{

/** How a conditional terminator decides its direction at run time. */
enum class CondBehavior : std::uint8_t
{
    kBiased,    ///< independent Bernoulli with site-specific probability
    kLoop,      ///< backward branch: taken trip-1 times, then not-taken
    kPeriodic,  ///< deterministic pattern with site-specific period
};

/** Terminator of a basic block. */
struct Terminator
{
    trace::InstKind kind = trace::InstKind::kNonBranch;

    /** Primary target, as a block index within the owning function
     * (kCondBranch/kUncondBranch/kLoop), or a function index (kCall).
     * Unused for kReturn.  For kIndirect, see targets. */
    std::uint32_t target = 0;

    /** Candidate blocks for kIndirect, with implicit descending weights. */
    std::vector<std::uint32_t> targets;

    CondBehavior cond = CondBehavior::kBiased;
    float takenProb = 0.5f;     ///< kBiased
    std::uint16_t loopTrip = 1; ///< kLoop: iterations per entry
    std::uint16_t period = 2;   ///< kPeriodic: taken except every Nth

    bool valid() const { return kind != trace::InstKind::kNonBranch; }
};

/** A straight-line block plus terminator. Addresses are assigned at
 * layout time by the builder. */
struct BasicBlock
{
    Addr start = 0;                      ///< first instruction address
    std::vector<std::uint8_t> lengths;   ///< per-instruction byte lengths
    Terminator term;                     ///< may be invalid: fallthrough

    /** Byte size of the block including its terminator instruction. */
    std::uint32_t
    byteSize() const
    {
        std::uint32_t n = 0;
        for (auto l : lengths)
            n += l;
        return n;
    }

    /** Address of the terminator (last instruction). */
    Addr
    termIa() const
    {
        Addr a = start;
        for (std::size_t i = 0; i + 1 < lengths.size(); ++i)
            a += lengths[i];
        return a;
    }

    /** Address just past the block. */
    Addr endIa() const { return start + byteSize(); }
};

/** A function: contiguous blocks, entry at blocks[0].start. */
struct Function
{
    std::vector<BasicBlock> blocks;

    Addr entry() const { return blocks.front().start; }
};

/** A whole synthetic program. */
struct Program
{
    std::vector<Function> functions;

    /** Count of static branch sites (possible BTB entries). */
    std::uint64_t
    staticBranchSites() const
    {
        std::uint64_t n = 0;
        for (const auto &f : functions)
            for (const auto &b : f.blocks)
                if (b.term.valid())
                    ++n;
        return n;
    }
};

} // namespace zbp::workload

#endif // ZBP_WORKLOAD_CFG_HH
