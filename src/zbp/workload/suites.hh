/**
 * @file
 * The 13 named large-footprint workloads of the paper's Table 4,
 * re-created as synthetic suites.
 *
 * Each suite pairs a static program recipe (BuildParams) with dynamic
 * behaviour (GenParams), tuned so the measured unique-branch and
 * unique-taken-branch footprints land near the counts IBM reported.
 * Absolute agreement is impossible (the real traces are proprietary);
 * `bench/table4_footprints` prints paper-vs-measured side by side.
 */

#ifndef ZBP_WORKLOAD_SUITES_HH
#define ZBP_WORKLOAD_SUITES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "zbp/trace/trace.hh"
#include "zbp/workload/generator.hh"
#include "zbp/workload/program_builder.hh"

namespace zbp::workload
{

/** One Table 4 row: paper metadata plus the synthetic recipe. */
struct SuiteSpec
{
    std::string name;                  ///< short identifier
    std::string paperName;             ///< Table 4 trace name
    std::uint64_t paperUniqueBranches; ///< Table 4 column 2
    std::uint64_t paperUniqueTaken;    ///< Table 4 column 3
    BuildParams build;
    GenParams gen;
};

/** All 13 suites, in the paper's Table 4 order. */
const std::vector<SuiteSpec> &paperSuites();

/** Look up a suite by its short name; fatal() when unknown. */
const SuiteSpec &findSuite(const std::string &name);

/**
 * Build the program and generate the trace for @p spec.
 * @param length_scale multiplies the suite's nominal instruction count
 *        (benches use < 1.0 for quick runs, tests use ~0.1).
 *
 * Content-addressed on-disk cache: when ZBP_TRACE_CACHE names a
 * directory, the trace is stored there as
 * `<name>-<key>.zbpt` where the key hashes every BuildParams and
 * GenParams field, the length scale and kGeneratorVersion — any change
 * to the recipe changes the file name, so stale entries are never
 * reused, only orphaned.  A cache hit memory-maps the file zero-copy
 * (the returned Trace is a view; concurrent processes share one
 * physical copy); a corrupt entry is regenerated and rewritten.  Cache
 * writes are atomic (tmp + rename), so a crashed or racing writer can
 * never publish a partial file.
 */
trace::Trace makeSuiteTrace(const SuiteSpec &spec,
                            double length_scale = 1.0);

/** Cache-key of (spec, length_scale) — the hex id embedded in cache
 * file names (exposed for tests and tooling). */
std::uint64_t suiteTraceKey(const SuiteSpec &spec, double length_scale);

/**
 * Shared-ownership variant of makeSuiteTrace with an in-process
 * registry: repeated calls for the same (spec recipe, scale) return the
 * same immutable Trace while anyone still holds it (weak registry —
 * dropped traces are regenerated or re-mapped on demand).  This is the
 * loader the sweep fusion path uses so N configurations reference one
 * trace instance instead of N copies.
 */
trace::TraceHandle suiteTraceHandle(const SuiteSpec &spec,
                                    double length_scale = 1.0);

/** Process-wide trace-cache counters (monotonic). */
struct TraceCacheStats
{
    std::uint64_t hits = 0;      ///< served by mapping a cached file
    std::uint64_t misses = 0;    ///< no cached file: generated
    std::uint64_t invalid = 0;   ///< cached file corrupt: regenerated
    std::uint64_t generated() const { return misses + invalid; }
};

/** Snapshot of the cache counters (all zero when caching is off). */
TraceCacheStats traceCacheStats();

/**
 * Honour the ZBP_LEN_SCALE environment variable (default 1.0) so every
 * bench binary can be globally shortened or lengthened.
 */
double envLengthScale();

} // namespace zbp::workload

#endif // ZBP_WORKLOAD_SUITES_HH
