/**
 * @file
 * The 13 named large-footprint workloads of the paper's Table 4,
 * re-created as synthetic suites.
 *
 * Each suite pairs a static program recipe (BuildParams) with dynamic
 * behaviour (GenParams), tuned so the measured unique-branch and
 * unique-taken-branch footprints land near the counts IBM reported.
 * Absolute agreement is impossible (the real traces are proprietary);
 * `bench/table4_footprints` prints paper-vs-measured side by side.
 */

#ifndef ZBP_WORKLOAD_SUITES_HH
#define ZBP_WORKLOAD_SUITES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "zbp/trace/trace.hh"
#include "zbp/workload/generator.hh"
#include "zbp/workload/program_builder.hh"

namespace zbp::workload
{

/** One Table 4 row: paper metadata plus the synthetic recipe. */
struct SuiteSpec
{
    std::string name;                  ///< short identifier
    std::string paperName;             ///< Table 4 trace name
    std::uint64_t paperUniqueBranches; ///< Table 4 column 2
    std::uint64_t paperUniqueTaken;    ///< Table 4 column 3
    BuildParams build;
    GenParams gen;
};

/** All 13 suites, in the paper's Table 4 order. */
const std::vector<SuiteSpec> &paperSuites();

/** Look up a suite by its short name; fatal() when unknown. */
const SuiteSpec &findSuite(const std::string &name);

/**
 * Build the program and generate the trace for @p spec.
 * @param length_scale multiplies the suite's nominal instruction count
 *        (benches use < 1.0 for quick runs, tests use ~0.1).
 */
trace::Trace makeSuiteTrace(const SuiteSpec &spec,
                            double length_scale = 1.0);

/**
 * Honour the ZBP_LEN_SCALE environment variable (default 1.0) so every
 * bench binary can be globally shortened or lengthened.
 */
double envLengthScale();

} // namespace zbp::workload

#endif // ZBP_WORKLOAD_SUITES_HH
