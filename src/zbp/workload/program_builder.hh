/**
 * @file
 * Random-but-deterministic construction of synthetic Programs.
 *
 * The builder turns a BuildParams knob set into a Program whose static
 * structure mimics large commercial codes: thousands of small functions
 * grouped into modules, short basic blocks, mostly-biased conditionals
 * with a flaky minority, counted loops, indirect branches with several
 * targets, and a call DAG (callees always have a higher function index,
 * so walks terminate and recursion never happens).
 */

#ifndef ZBP_WORKLOAD_PROGRAM_BUILDER_HH
#define ZBP_WORKLOAD_PROGRAM_BUILDER_HH

#include <cstdint>

#include "zbp/common/types.hh"
#include "zbp/workload/cfg.hh"

namespace zbp::workload
{

/** Static-structure knobs. See DESIGN.md §2 for the rationale. */
struct BuildParams
{
    std::uint64_t seed = 1;

    std::uint32_t numFunctions = 400;
    std::uint32_t minBlocksPerFunction = 4;
    std::uint32_t maxBlocksPerFunction = 14;
    std::uint32_t minInstsPerBlock = 2;
    std::uint32_t maxInstsPerBlock = 9;

    /** Terminator mix (fractions of non-final blocks; remainder become
     * plain biased conditionals). */
    double callFraction = 0.18;
    double uncondFraction = 0.10;
    double indirectFraction = 0.04;
    double loopFraction = 0.08;

    /** Of the biased conditionals: fraction that are hard to predict and
     * fraction that follow a deterministic periodic pattern. */
    double flakyFraction = 0.07;
    double periodicFraction = 0.06;

    /** Loop trip count range. */
    std::uint16_t minLoopTrip = 2;
    std::uint16_t maxLoopTrip = 24;

    /** Layout. */
    Addr base = 0x0000000000100000ull;
    std::uint32_t functionAlign = 64;
    /** Functions per module: a module is a contiguous code region, so
     * this controls how densely 4 KB blocks are populated. */
    std::uint32_t moduleSize = 24;
    std::uint32_t moduleGapBytes = 2048;
};

/** Build a Program from @p p (deterministic in p.seed). */
Program buildProgram(const BuildParams &p);

} // namespace zbp::workload

#endif // ZBP_WORKLOAD_PROGRAM_BUILDER_HH
