/**
 * @file
 * Dynamic trace generation: a deterministic walker that executes a
 * Program and emits a control-flow-consistent instruction trace.
 *
 * Transactions are modelled the way online-transaction workloads behave:
 * a tiny, extremely hot dispatcher loop indirectly calls a "transaction
 * root" function drawn (Zipf-skewed) from the currently hot subset of
 * roots; the hot subset rotates every phaseLength instructions, which is
 * what creates the first-level-BTB capacity churn the paper's BTB2
 * exists to serve.
 */

#ifndef ZBP_WORKLOAD_GENERATOR_HH
#define ZBP_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <string>

#include "zbp/trace/trace.hh"
#include "zbp/workload/cfg.hh"

namespace zbp::workload
{

/**
 * Version of the workload synthesis pipeline (program builder + trace
 * walker).  Part of the trace-cache key: bump it whenever a change makes
 * buildProgram or generateTrace emit different instructions for the same
 * parameters, so stale cached traces are regenerated instead of reused.
 */
inline constexpr std::uint32_t kGeneratorVersion = 1;

/** Dynamic-behaviour knobs. */
struct GenParams
{
    std::uint64_t seed = 7;
    std::uint64_t length = 1'000'000;  ///< instructions to emit (approx.)

    /** Number of functions usable as transaction roots (spread evenly
     * over the function list). 0 = every function. */
    std::uint32_t numRoots = 64;

    /** Size of the hot root window within a phase. */
    std::uint32_t hotRoots = 16;

    /** Instructions per phase before the hot window rotates;
     * 0 disables rotation. */
    std::uint64_t phaseLength = 150'000;

    /** How far the hot window slides each phase. */
    std::uint32_t phaseStride = 8;

    /** Zipf-ish skew of root popularity inside the hot window. */
    double rootSkew = 0.8;

    /** Address of the synthetic dispatcher loop (kept away from the
     * program's code so it occupies its own 4 KB block). */
    Addr dispatcherBase = 0x0000000000020000ull;

    /** Bound on call-stack depth; deeper call sites fall through (the
     * walker emits them as taken branches to the next instruction). */
    std::uint32_t maxCallDepth = 48;

    /** Soft cap on instructions per transaction; once exceeded, further
     * call sites fall through so the transaction winds down. */
    std::uint64_t maxTransactionInsts = 8'000;

    /** Operand access synthesis (drives the finite L1 D-cache model).
     * Fraction of non-branch instructions that carry a data address. */
    double dataAccessFraction = 0.40;
    /** Stack grows down from here; one 256 B frame per call level. */
    Addr stackBase = 0x00007F0000000000ull;
    /** Per-transaction-root private data region base and size. */
    Addr heapBase = 0x0000500000000000ull;
    std::uint64_t heapRegionBytes = 48 * 1024;
    /** Shared (cross-transaction) data pool size. */
    std::uint64_t sharedHeapBytes = 1024 * 1024;
};

/**
 * Walk @p prog under @p gp and return the resulting trace.
 * The result always satisfies Trace::consistent().
 */
trace::Trace generateTrace(const Program &prog, const GenParams &gp,
                           const std::string &name);

} // namespace zbp::workload

#endif // ZBP_WORKLOAD_GENERATOR_HH
