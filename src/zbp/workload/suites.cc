#include "zbp/workload/suites.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "zbp/common/log.hh"
#include "zbp/obs/obs_config.hh"
#include "zbp/trace/trace_io.hh"
#include "zbp/util/atomic_file.hh"

namespace zbp::workload
{

namespace
{

/** Personality of a workload: coarse knob bundles that steer the ratio
 * of ever-taken to all branch sites and the code layout density. */
enum class Personality
{
    kBranchyTaken, ///< TPF-like: dense taken branches, small footprint
    kBalanced,     ///< typical z/OS transaction mix
    kColdCond,     ///< WAS/DB-like: many rarely-taken error-path branches
};

BuildParams
buildFor(Personality p, std::uint64_t unique_target, std::uint64_t seed)
{
    BuildParams b;
    b.seed = seed;

    switch (p) {
      case Personality::kBranchyTaken:
        b.callFraction = 0.22;
        b.uncondFraction = 0.15;
        b.indirectFraction = 0.05;
        b.loopFraction = 0.11;
        b.flakyFraction = 0.06;
        b.periodicFraction = 0.08;
        b.minInstsPerBlock = 2;
        b.maxInstsPerBlock = 6;
        break;
      case Personality::kBalanced:
        // BuildParams defaults.
        break;
      case Personality::kColdCond:
        b.callFraction = 0.12;
        b.uncondFraction = 0.06;
        b.indirectFraction = 0.03;
        b.loopFraction = 0.05;
        b.flakyFraction = 0.08;
        b.periodicFraction = 0.04;
        b.minInstsPerBlock = 3;
        b.maxInstsPerBlock = 10;
        break;
    }

    // ~9 static branch sites per function on average with the default
    // 4..14 block range.  The walker only touches a fraction of the
    // static sites (measured per personality with the default dynamic
    // parameters); the function count is scaled so the *dynamic*
    // footprint lands near the paper's Table 4 value.
    const double sites_per_function =
            (b.minBlocksPerFunction + b.maxBlocksPerFunction) / 2.0;
    const double coverage = p == Personality::kColdCond   ? 0.23
                            : p == Personality::kBranchyTaken ? 0.39
                                                              : 0.37;
    b.numFunctions = static_cast<std::uint32_t>(
            static_cast<double>(unique_target) / sites_per_function /
            coverage);
    if (b.numFunctions < 8)
        b.numFunctions = 8;
    return b;
}

GenParams
genFor(Personality p, const BuildParams &b, std::uint64_t seed,
       std::uint64_t unique_target)
{
    GenParams g;
    g.seed = seed * 0x9E37u + 17;

    // Roots spread across the whole program; the hot window covers a
    // modest slice and slides so every phase both revisits recent code
    // (BTB2 re-load opportunity) and touches colder code.
    g.numRoots = std::max<std::uint32_t>(16, b.numFunctions / 5);
    g.hotRoots = std::max<std::uint32_t>(8, g.numRoots / 3);
    g.phaseStride = std::max<std::uint32_t>(2, g.hotRoots / 2);
    g.phaseLength = 100'000;
    g.rootSkew = p == Personality::kColdCond ? 0.2 : 0.35;

    // Nominal length: enough for every root window position to recur at
    // least twice, bounded for bench runtimes.
    const std::uint64_t per_phase = g.phaseLength;
    const std::uint64_t phases_per_lap =
            (g.numRoots + g.phaseStride - 1) / g.phaseStride;
    std::uint64_t len = per_phase * phases_per_lap * 2;
    // Large footprints need proportionally longer traces or compulsory
    // misses swamp the capacity signal the paper studies.
    const std::uint64_t floor_len = unique_target * 30;
    if (len < floor_len)
        len = floor_len;
    if (len < 1'600'000)
        len = 1'600'000;
    if (len > 3'200'000)
        len = 3'200'000;
    g.length = len;
    return g;
}

SuiteSpec
makeSpec(const std::string &name, const std::string &paper_name,
         std::uint64_t uniq, std::uint64_t taken, Personality p,
         std::uint64_t seed)
{
    SuiteSpec s;
    s.name = name;
    s.paperName = paper_name;
    s.paperUniqueBranches = uniq;
    s.paperUniqueTaken = taken;
    s.build = buildFor(p, uniq, seed);
    s.gen = genFor(p, s.build, seed, uniq);
    return s;
}

std::vector<SuiteSpec>
makeAll()
{
    using P = Personality;
    std::vector<SuiteSpec> v;
    v.push_back(makeSpec("cb84", "Z/OS LSPR CB84",
                         15'244, 10'963, P::kBalanced, 101));
    v.push_back(makeSpec("cicsdb2", "Z/OS LSPR CICS/DB2",
                         40'667, 27'500, P::kBalanced, 102));
    v.push_back(makeSpec("ims", "Z/OS LSPR IMS",
                         29'692, 19'673, P::kBalanced, 103));
    v.push_back(makeSpec("cbl", "Z/OS LSPR CB-L",
                         25'622, 16'612, P::kBalanced, 104));
    v.push_back(makeSpec("wasdb_cbw2", "Z/OS LSPR WASDB+CBW2",
                         114'955, 51'371, P::kColdCond, 105));
    v.push_back(makeSpec("trade6", "Z/OS Trade6",
                         115'509, 56'017, P::kColdCond, 106));
    v.push_back(makeSpec("tpf", "TPF airline reservations",
                         11'160, 9'317, P::kBranchyTaken, 107));
    v.push_back(makeSpec("appserv", "Z/OS AppServ benchmark",
                         26'340, 16'980, P::kBalanced, 108));
    v.push_back(makeSpec("dbserv", "Z/OS DBServ benchmark",
                         38'655, 20'020, P::kColdCond, 109));
    v.push_back(makeSpec("daytrader_app", "Z/OS DayTrader AppServ",
                         67'336, 30'165, P::kColdCond, 110));
    v.push_back(makeSpec("daytrader_db", "Z/OS DayTrader DBServ",
                         34'819, 22'217, P::kBalanced, 111));
    v.push_back(makeSpec("informix", "zLinux Informix",
                         16'810, 11'765, P::kBalanced, 112));
    v.push_back(makeSpec("ztrade6", "zLinux Trade6",
                         69'847, 31'897, P::kColdCond, 113));
    return v;
}

// ---- trace cache ----------------------------------------------------

std::atomic<std::uint64_t> cacheHits{0};
std::atomic<std::uint64_t> cacheMisses{0};
std::atomic<std::uint64_t> cacheInvalid{0};

/** Timeline instant for one cache lookup outcome (no-op when the
 * timeline is off).  One shared lane: instants have no duration, so
 * concurrent lookups from different workers render fine on it. */
void
noteCacheEvent(const char *what, const std::string &path)
{
    obs::TraceWriter *const tw = obs::globalTraceWriter();
    if (tw == nullptr)
        return;
    static const std::uint32_t lane =
            tw->newLane(obs::TraceWriter::kPidRunner, "trace cache");
    tw->instant(obs::TraceWriter::kPidRunner, lane, "cache",
                std::string("trace-cache:") + what, tw->nowUs(),
                {{"path", obs::jsonStr(path)}});
}

/** The uncached generation path (the pre-cache makeSuiteTrace body). */
trace::Trace
generateSuiteTrace(const SuiteSpec &spec, double length_scale)
{
    const Program prog = buildProgram(spec.build);
    GenParams gp = spec.gen;
    gp.length = static_cast<std::uint64_t>(
            static_cast<double>(gp.length) * length_scale);
    if (gp.length < 10'000)
        gp.length = 10'000;
    // Keep the *number* of phases constant as the trace shrinks so the
    // hot window still sweeps the whole root set (footprint coverage
    // must not degrade with ZBP_LEN_SCALE).
    if (length_scale < 1.0 && gp.phaseLength != 0) {
        gp.phaseLength = static_cast<std::uint64_t>(
                static_cast<double>(gp.phaseLength) * length_scale);
        if (gp.phaseLength < 15'000)
            gp.phaseLength = 15'000;
    }
    return generateTrace(prog, gp, spec.name);
}

std::string
cachePathFor(const char *dir, const SuiteSpec &spec, double scale)
{
    char hex[17];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(
                          suiteTraceKey(spec, scale)));
    return std::string(dir) + "/" + spec.name + "-" + hex + ".zbpt";
}

/** Publish @p t at @p path atomically and durably: write a
 * uniquely-named tmp file in the same directory, then fsync + rename
 * over the target (zbp::publishFile).  Racing writers produce identical
 * bytes, so last-rename-wins is harmless; a failure only costs the
 * caching, never the result.  The tmp name folds in the thread identity
 * on top of the pid because cache writers race within one process. */
void
saveCacheFileAtomic(const trace::Trace &t, const std::string &path)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);

    static std::atomic<std::uint64_t> token{0};
    const std::uint64_t id =
            (std::hash<std::thread::id>{}(std::this_thread::get_id()) << 16) ^
            token.fetch_add(1, std::memory_order_relaxed);
    const std::string tmp =
            atomicTmpPath(path) + "." + std::to_string(id);
    try {
        trace::saveTraceFile(t, tmp);
    } catch (const trace::TraceIoError &e) {
        warn("trace cache: cannot write '", tmp, "': ", e.what());
        fs::remove(tmp, ec);
        return;
    }
    publishFile(tmp, path); // warns and removes the tmp on failure
}

} // namespace

const std::vector<SuiteSpec> &
paperSuites()
{
    static const std::vector<SuiteSpec> suites = makeAll();
    return suites;
}

const SuiteSpec &
findSuite(const std::string &name)
{
    for (const auto &s : paperSuites())
        if (s.name == name)
            return s;
    fatal("unknown suite '", name, "'");
}

std::uint64_t
suiteTraceKey(const SuiteSpec &spec, double length_scale)
{
    const BuildParams &b = spec.build;
    const GenParams &g = spec.gen;
    std::uint64_t h = 0xCBF29CE484222325ull; // FNV offset basis
    const auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 0x100000001B3ull;
        h ^= h >> 32;
    };
    const auto mixd = [&mix](double d) {
        mix(std::bit_cast<std::uint64_t>(d));
    };

    // Anything that changes the generated instruction stream must feed
    // the key: format + generator versions, the scale, and every knob
    // of the static and dynamic recipes.
    mix(trace::kTraceVersion);
    mix(kGeneratorVersion);
    mixd(length_scale);

    mix(b.seed);
    mix(b.numFunctions);
    mix(b.minBlocksPerFunction);
    mix(b.maxBlocksPerFunction);
    mix(b.minInstsPerBlock);
    mix(b.maxInstsPerBlock);
    mixd(b.callFraction);
    mixd(b.uncondFraction);
    mixd(b.indirectFraction);
    mixd(b.loopFraction);
    mixd(b.flakyFraction);
    mixd(b.periodicFraction);
    mix(b.minLoopTrip);
    mix(b.maxLoopTrip);
    mix(b.base);
    mix(b.functionAlign);
    mix(b.moduleSize);
    mix(b.moduleGapBytes);

    mix(g.seed);
    mix(g.length);
    mix(g.numRoots);
    mix(g.hotRoots);
    mix(g.phaseLength);
    mix(g.phaseStride);
    mixd(g.rootSkew);
    mix(g.dispatcherBase);
    mix(g.maxCallDepth);
    mix(g.maxTransactionInsts);
    mixd(g.dataAccessFraction);
    mix(g.stackBase);
    mix(g.heapBase);
    mix(g.heapRegionBytes);
    mix(g.sharedHeapBytes);

    // SplitMix64 finalizer: spread the FNV state over all 64 bits.
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
}

trace::Trace
makeSuiteTrace(const SuiteSpec &spec, double length_scale)
{
    ZBP_ASSERT(length_scale > 0.0, "length_scale must be positive");
    const char *dir = std::getenv("ZBP_TRACE_CACHE");
    if (dir == nullptr || *dir == '\0')
        return generateSuiteTrace(spec, length_scale);

    const std::string path = cachePathFor(dir, spec, length_scale);
    try {
        trace::Trace t = trace::mapTraceFile(path);
        cacheHits.fetch_add(1, std::memory_order_relaxed);
        noteCacheEvent("hit", path);
        return t;
    } catch (const trace::TraceOpenError &) {
        // Not cached yet (or unreadable): generate and publish.
        cacheMisses.fetch_add(1, std::memory_order_relaxed);
        noteCacheEvent("miss", path);
    } catch (const trace::TraceIoError &e) {
        cacheInvalid.fetch_add(1, std::memory_order_relaxed);
        noteCacheEvent("invalid", path);
        warn("trace cache: regenerating corrupt entry '", path,
             "': ", e.what());
    }
    trace::Trace t = generateSuiteTrace(spec, length_scale);
    saveCacheFileAtomic(t, path);
    return t;
}

trace::TraceHandle
suiteTraceHandle(const SuiteSpec &spec, double length_scale)
{
    // Weak registry: while any job still holds a handle, later requests
    // share it; once every holder is gone the entry expires and the
    // trace is re-mapped (cheap) or regenerated on the next request.
    static std::mutex mu;
    static std::unordered_map<std::uint64_t,
                              std::weak_ptr<const trace::Trace>> reg;
    const std::uint64_t key = suiteTraceKey(spec, length_scale);
    {
        std::lock_guard<std::mutex> lk(mu);
        if (const auto it = reg.find(key); it != reg.end())
            if (auto sp = it->second.lock())
                return sp;
    }
    // Generate outside the lock so distinct suites load in parallel.
    auto sp = std::make_shared<const trace::Trace>(
            makeSuiteTrace(spec, length_scale));
    std::lock_guard<std::mutex> lk(mu);
    auto &slot = reg[key];
    if (auto prior = slot.lock())
        return prior; // another thread won the race; share its copy
    slot = sp;
    return sp;
}

TraceCacheStats
traceCacheStats()
{
    TraceCacheStats s;
    s.hits = cacheHits.load(std::memory_order_relaxed);
    s.misses = cacheMisses.load(std::memory_order_relaxed);
    s.invalid = cacheInvalid.load(std::memory_order_relaxed);
    return s;
}

double
envLengthScale()
{
    const char *s = std::getenv("ZBP_LEN_SCALE");
    if (s == nullptr)
        return 1.0;
    const double v = std::atof(s);
    if (v <= 0.0) {
        warn("ignoring bad ZBP_LEN_SCALE '", s, "'");
        return 1.0;
    }
    return v;
}

} // namespace zbp::workload
