/**
 * @file
 * Seeded fault injection for predictor state — the RAS posture of the
 * machine the paper describes, reproduced in the model.
 *
 * A zEC12 predictor array takes parity hits; the machine must degrade
 * to mispredicts and wasted preloads, never to wrong answers.  The
 * FaultInjector models exactly that failure class: on a table access it
 * may flip or invalidate an entry of the accessed structure, at a
 * configurable per-site Bernoulli rate and/or at targeted cycles.
 *
 * Design constraints:
 *  - Zero overhead when off.  Components hold a plain
 *    `FaultInjector *` that is null unless injection is enabled; every
 *    hook is a single null-pointer test on the hot path, and a model
 *    built with FaultParams::enabled == false produces bit-identical
 *    counters to one built before this subsystem existed.
 *  - Deterministic.  All randomness comes from one SplitMix64 Rng
 *    seeded from FaultParams::seed, drawn only when a site's rate is
 *    positive, so a given (config, trace, seed) replays exactly.
 *  - Corruption-only.  The injector never fabricates new entries; the
 *    per-site callbacks registered by the owning structures invalidate
 *    entries or flip stored bits, which the simulator must absorb as
 *    extra mispredicts/surprises (pinned by the CoreModel invariant
 *    checker and tests/fault/).
 */

#ifndef ZBP_FAULT_FAULT_INJECTOR_HH
#define ZBP_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "zbp/ckpt/ckpt.hh"
#include "zbp/common/rng.hh"
#include "zbp/common/types.hh"

namespace zbp::obs
{
class TraceWriter;
}

namespace zbp::fault
{

/** The injectable structures (one callback each). */
enum class Site : std::uint8_t
{
    kBtb1,     ///< first-level BTB rows
    kBtbp,     ///< preload buffer rows
    kBtb2,     ///< second-level BTB rows
    kPht,      ///< pattern history table entries
    kCtb,      ///< changing target buffer entries
    kSot,      ///< sector order table entries
    kTransfer, ///< BTB2->BTBP bulk-transfer payloads in flight
    kArbiter,  ///< shared-BTB2 bank arbiter queue state (CMP)
};

inline constexpr unsigned kSiteCount = 8;

/** Short stable name for reports ("btb1", "pht", ...). */
const char *siteName(Site s);

/** One scheduled fault: fire at the first access tickable at or after
 * @p at (the run loop skips idle cycles, so "at cycle X" means "no
 * earlier than X"). */
struct TargetedFault
{
    Cycle at = 0;
    Site site = Site::kBtb1;
    /** Site-specific locator, same meaning as the hook's `where`
     * operand (an address for the BTBs/SOT, a table index for
     * PHT/CTB).  What exactly gets corrupted inside the located
     * row/set is still drawn from the seeded Rng. */
    std::uint64_t where = 0;
};

/** Injection schedule knobs; part of core::MachineParams. */
struct FaultParams
{
    /** Master switch.  False = no injector is even constructed; every
     * hook stays a null-pointer test. */
    bool enabled = false;

    /** Seed for the injection Rng (which entry/bit gets corrupted). */
    std::uint64_t seed = 0x5EEDFA17ull;

    /** Per-access corruption probability applied to every site whose
     * siteRate is negative.  0.0 = rate-based injection off. */
    double rate = 0.0;

    /** Per-site override; negative = inherit `rate`. */
    std::array<double, kSiteCount> siteRate{-1.0, -1.0, -1.0, -1.0,
                                            -1.0, -1.0, -1.0, -1.0};

    /** Hard cap on rate-driven faults (targeted faults always fire). */
    std::uint64_t maxFaults = ~std::uint64_t{0};

    /** Faults to fire at specific cycles regardless of rate. */
    std::vector<TargetedFault> targeted;
};

/**
 * The injector: owns the schedule, the Rng and the per-site corruption
 * callbacks registered by the structures it targets.
 */
class FaultInjector
{
  public:
    /** Callback that corrupts one entry near @p where; drawn bits come
     * from @p rng so corruption stays on the seeded stream. */
    using InjectFn = std::function<void(Rng &rng, std::uint64_t where)>;

    explicit FaultInjector(const FaultParams &p);

    /** Register the corruption callback for @p s (one per site). */
    void attach(Site s, InjectFn fn);

    /**
     * Hot-path hook: called by a structure on each access.  Draws one
     * Bernoulli trial at the site's rate and corrupts on success.
     * Early-outs without touching the Rng when the site rate is zero,
     * keeping rate-0 runs bit-identical to injection-disabled runs.
     */
    void
    onAccess(Site s, std::uint64_t where)
    {
        const double r = rate[static_cast<unsigned>(s)];
        if (r <= 0.0)
            return;
        if (nInjected >= prm.maxFaults)
            return;
        if (!rng.chance(r))
            return;
        fire(s, where);
    }

    /** Fire every targeted fault due at or before @p now (called once
     * per run-loop iteration; idle-skips make "due" = "at or after"). */
    void
    tick(Cycle now)
    {
        nowCycle = now;
        while (nextTargeted < schedule.size() &&
               schedule[nextTargeted].at <= now) {
            const TargetedFault &t = schedule[nextTargeted++];
            fire(t.site, t.where);
        }
    }

    /** Earliest un-fired targeted fault, kNoCycle when none remain
     * (lets the run loop's idle-skip include the schedule). */
    Cycle
    nextTargetedAt() const
    {
        return nextTargeted < schedule.size() ? schedule[nextTargeted].at
                                              : kNoCycle;
    }

    /** Faults actually applied (a fire against a site with no attached
     * callback, or that landed on an invalid entry, still counts as an
     * injection attempt only when a callback ran). */
    std::uint64_t injected() const { return nInjected; }
    std::uint64_t injectedAt(Site s) const
    {
        return perSite[static_cast<unsigned>(s)];
    }

    /** Re-arm for a fresh run: reseed the Rng, clear counters, rewind
     * the targeted schedule. */
    void reset();

    /** Serialize the Rng stream position, schedule cursor and counters
     * (the schedule itself is construction state). */
    void
    saveState(ckpt::Writer &w) const
    {
        w.beginSection(ckpt::tag::kFault);
        w.putU64(rng.rawState());
        w.putU64(static_cast<std::uint64_t>(nextTargeted));
        w.putU64(nInjected);
        for (const std::uint64_t c : perSite)
            w.putU64(c);
        w.putU64(nowCycle);
        w.endSection();
    }

    /** Overwrite from a checkpoint section; throws ckpt::CkptError when
     * the stored schedule cursor exceeds this run's schedule. */
    void
    restoreState(ckpt::Reader &r)
    {
        r.openSection(ckpt::tag::kFault);
        const std::uint64_t raw = r.getU64();
        const std::uint64_t nt = r.getU64();
        if (nt > schedule.size())
            throw ckpt::CkptError("fault schedule cursor out of range");
        const std::uint64_t inj = r.getU64();
        std::array<std::uint64_t, kSiteCount> ps{};
        for (std::uint64_t &c : ps)
            c = r.getU64();
        const Cycle now = r.getU64();
        r.closeSection();
        rng.seed(raw);
        nextTargeted = static_cast<std::size_t>(nt);
        nInjected = inj;
        perSite = ps;
        nowCycle = now;
    }

    /** Attach the obs timeline: each applied fault is emitted as an
     * instant on lane @p lane of the microarch track.  Injection
     * decisions and the Rng stream are unaffected — tracing never
     * changes what gets corrupted. */
    void setTracer(obs::TraceWriter *t, std::uint32_t lane)
    {
        tracer = t;
        laneId = lane;
    }
    bool traced() const { return tracer != nullptr; }

    /** Timestamp source for traced onAccess() fires; the owning run
     * loop calls this only when a tracer is attached. */
    void noteCycle(Cycle now) { nowCycle = now; }

  private:
    void fire(Site s, std::uint64_t where);

    FaultParams prm;
    Rng rng;
    std::array<double, kSiteCount> rate{};
    std::array<InjectFn, kSiteCount> inject{};
    std::array<std::uint64_t, kSiteCount> perSite{};
    std::vector<TargetedFault> schedule; ///< sorted by cycle
    std::size_t nextTargeted = 0;
    std::uint64_t nInjected = 0;

    // Timeline (null = tracing off; fire() emits instants when set).
    obs::TraceWriter *tracer = nullptr;
    std::uint32_t laneId = 0;
    Cycle nowCycle = 0;
};

} // namespace zbp::fault

#endif // ZBP_FAULT_FAULT_INJECTOR_HH
