#include "zbp/fault/fault_injector.hh"

#include <algorithm>

#include "zbp/obs/trace_writer.hh"

namespace zbp::fault
{

const char *
siteName(Site s)
{
    switch (s) {
      case Site::kBtb1:
        return "btb1";
      case Site::kBtbp:
        return "btbp";
      case Site::kBtb2:
        return "btb2";
      case Site::kPht:
        return "pht";
      case Site::kCtb:
        return "ctb";
      case Site::kSot:
        return "sot";
      case Site::kTransfer:
        return "transfer";
      case Site::kArbiter:
        return "arbiter";
    }
    return "?";
}

FaultInjector::FaultInjector(const FaultParams &p)
    : prm(p), rng(p.seed), schedule(p.targeted)
{
    for (unsigned i = 0; i < kSiteCount; ++i)
        rate[i] = prm.siteRate[i] < 0.0 ? prm.rate : prm.siteRate[i];
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const TargetedFault &a, const TargetedFault &b) {
                         return a.at < b.at;
                     });
}

void
FaultInjector::attach(Site s, InjectFn fn)
{
    inject[static_cast<unsigned>(s)] = std::move(fn);
}

void
FaultInjector::fire(Site s, std::uint64_t where)
{
    const auto &fn = inject[static_cast<unsigned>(s)];
    if (!fn)
        return; // site not wired in this machine (e.g. BTB2 disabled)
    fn(rng, where);
    ++nInjected;
    ++perSite[static_cast<unsigned>(s)];
    if (tracer != nullptr) {
        tracer->instant(obs::TraceWriter::kPidUarch, laneId, "fault",
                        std::string("fault:") + siteName(s),
                        static_cast<double>(nowCycle),
                        {{"where", obs::jsonNum(where)},
                         {"injected", obs::jsonNum(nInjected)}});
    }
}

void
FaultInjector::reset()
{
    rng.seed(prm.seed);
    perSite.fill(0);
    nextTargeted = 0;
    nInjected = 0;
}

} // namespace zbp::fault
