/**
 * @file
 * Gang-chunked sweep execution: N machine configurations simulated over
 * ONE trace in chunk-interleaved order.
 *
 * The job-per-(config, trace) runner streams every trace through memory
 * once *per configuration*: a 3-config sweep over a 100 MB trace set
 * reads 300 MB of trace data, and on a machine whose LLC cannot hold a
 * trace, each pass starts cold.  The gang runner instead walks the
 * sweep trace-major: all configurations of a gang advance over the same
 * instruction window ([0, C), then [C, 2C), ...) before the window
 * moves, so a chunk of trace (and its TraceIndex sidecar) is pulled
 * into cache once and consumed by every model while hot.  DRAM-stream
 * amplification (trace bytes read / trace bytes) drops from N to ~1.
 *
 * Determinism: CoreModel::advance cuts the run loop only at decode
 * boundaries and the models share nothing but immutable inputs (the
 * trace and its sidecar), so per-model results are bit-identical to
 * serial runs — the golden-counter tests and the gang-runner tests pin
 * this, across chunk sizes.
 *
 * The runner honours the same ZBP_RESULTS_JSONL / ZBP_RESUME_JSONL
 * contract as runner::JobRunner (same record shape, same resume
 * identity), so sweeps can mix the two paths and resume across them.
 * Per-job wall-clock timeouts (ZBP_JOB_TIMEOUT) are not supported on
 * the gang path: configs of a gang advance in lockstep, so one config's
 * wall-clock is not separable for cancellation.
 */

#ifndef ZBP_SIM_GANG_RUNNER_HH
#define ZBP_SIM_GANG_RUNNER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "zbp/core/params.hh"
#include "zbp/runner/job_runner.hh"
#include "zbp/runner/progress.hh"
#include "zbp/trace/trace.hh"

namespace zbp::sim
{

/** One member of a gang: a named machine configuration. */
struct GangConfig
{
    std::string name;       ///< label for records, progress and resume
    core::MachineParams cfg;
};

/** ZBP_GANG_CHUNK if set and valid (>= 1), else 262144 — large enough
 * that per-chunk member-switch overhead (each model's BTB/predictor
 * arrays re-warming the cache) vanishes, small enough that a chunk of
 * trace plus its sidecar slices stays LLC-resident for the gang. */
std::size_t gangChunkFromEnv();

/** ZBP_GANG_MICROCHUNK if set and valid (>= 1), else 0 (off).  When on,
 * each gang chunk is walked in member-interleaved sub-windows of this
 * many instructions, so the members' predictor planes take turns over a
 * trace slice that is still L1/L2-resident instead of each member
 * streaming the full chunk alone. */
std::size_t gangMicroChunkFromEnv();

class GangRunner
{
  public:
    /** @p jobs 0 resolves via ZBP_JOBS / hardware_concurrency; the
     * parallel axis is traces (each gang runs on one worker). */
    explicit GangRunner(std::vector<GangConfig> configs,
                        unsigned jobs = 0);

    unsigned jobs() const { return nJobs; }

    /** Decode-chunk size override (>= 1); default gangChunkFromEnv(). */
    void setChunk(std::size_t chunk);

    /** Member-interleaved sub-window size (0 = off); default
     * gangMicroChunkFromEnv().  Results are bit-identical for any
     * value — advance() cuts only at decode boundaries. */
    void setMicroChunk(std::size_t micro_chunk);

    /** Per-completion callback (one completion per (config, trace)). */
    void setProgress(runner::ProgressMeter::Callback cb);

    /** JSONL destination; overrides the ZBP_RESULTS_JSONL default.
     * Empty string disables export. */
    void setSinkPath(std::string path);

    /** Resume checkpoint; overrides the ZBP_RESUME_JSONL default (see
     * runner::JobRunner::setResumePath — identical semantics). */
    void setResumePath(std::string path);

    /**
     * Run every configuration over every trace; result[c][t] is
     * config c over trace t.  A config that throws (wedge, invariant
     * violation) yields ok=false for that (config, trace) cell; the
     * rest of the gang keeps running.  Each trace's TraceIndex is
     * computed once and shared read-only by the whole gang.
     */
    std::vector<std::vector<runner::SimJobResult>>
    run(const std::vector<trace::TraceHandle> &traces);

  private:
    std::vector<GangConfig> configs;
    unsigned nJobs;
    std::size_t chunk;
    std::size_t microChunk;
    runner::ProgressMeter::Callback progress;
    std::string sinkPath;
    bool sinkPathSet = false;
    std::string resumePath;
    bool resumePathSet = false;
};

} // namespace zbp::sim

#endif // ZBP_SIM_GANG_RUNNER_HH
