/**
 * @file
 * The paper's simulated configurations (Table 3) and the sweep points
 * of Figures 5-7, expressed as MachineParams factories.
 */

#ifndef ZBP_SIM_CONFIGS_HH
#define ZBP_SIM_CONFIGS_HH

#include <string>

#include "zbp/core/params.hh"

namespace zbp::sim
{

/**
 * Table 3 configuration 1 — "No BTB2": BTBP 768 (128 x 6), BTB1 4k
 * (1k x 4), BTB2 disabled.  (Table 3 prints "128 x 8" for this row's
 * BTBP; the text and every other row say 768 = 128 x 6, so we use
 * 128 x 6 throughout and note the discrepancy here.)
 */
core::MachineParams configNoBtb2();

/** Table 3 configuration 2 — "BTB2 enabled": + 24k BTB2 (4k x 6). */
core::MachineParams configBtb2();

/** Table 3 configuration 3 — "Unrealistically large BTB1": BTB1 grown
 * to 24k (4k x 6) at unchanged (unrealistic) latency, no BTB2. */
core::MachineParams configLargeBtb1();

/** configBtb2 with the BTB2 resized to @p rows x @p ways (Figure 5). */
core::MachineParams configBtb2Sized(std::uint32_t rows,
                                    std::uint32_t ways);

/** configBtb2 with the BTB1-miss definition changed to @p searches
 * fruitless searches (Figure 6). */
core::MachineParams configMissLimit(unsigned searches);

/** configBtb2 with @p n BTB2 search trackers (Figure 7). */
core::MachineParams configTrackers(unsigned n);

/** Human-readable one-line description of a configuration. */
std::string describe(const core::MachineParams &p);

} // namespace zbp::sim

#endif // ZBP_SIM_CONFIGS_HH
