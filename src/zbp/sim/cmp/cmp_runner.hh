/**
 * @file
 * CmpRunner — sharded execution of CMP jobs with the same JSONL
 * record/resume contract as runner::JobRunner.
 *
 * One CMP job is one N-core CmpModel over N traces.  The parallel axis
 * is jobs (a CMP steps its cores sequentially for determinism), and
 * every job emits:
 *
 *  - one per-core record per (job, core), config name "<job>#c<i>",
 *    byte-compatible with runner::jobRecord so the generic tooling
 *    (resume, CSV extraction) consumes CMP runs unchanged;
 *  - one sharing record, config name "<job>#shared", carrying the
 *    arbiter/L2I counters that exist only at the CMP level.  It is
 *    written with ok=false so runner::loadResumeResults skips it
 *    silently (it is not a re-runnable job), and parsed back here.
 *
 * Resume is all-or-nothing per job: a job is satisfied from the
 * checkpoint only when every per-core record is present; the sharing
 * record, when also present, restores the sharing stats (otherwise a
 * resumed job reports per-core results with zeroed sharing counters).
 */

#ifndef ZBP_SIM_CMP_CMP_RUNNER_HH
#define ZBP_SIM_CMP_CMP_RUNNER_HH

#include <string>
#include <vector>

#include "zbp/runner/job_runner.hh"
#include "zbp/sim/cmp/cmp_model.hh"

namespace zbp::sim
{

/** One schedulable CMP simulation: a machine over one trace per core.
 * cfg.cmp.cores must equal traces.size() (CmpModel enforces it). */
struct CmpJob
{
    std::string name; ///< label for records, progress and resume
    core::MachineParams cfg;
    std::vector<trace::TraceHandle> traces; ///< core i runs traces[i]
};

/** Outcome of one CMP job: a result, or a captured error. */
struct CmpJobResult
{
    bool ok = false;
    std::string error;    ///< set when !ok
    double seconds = 0.0; ///< wall-clock of this job
    bool resumed = false; ///< satisfied from a resume file, not re-run
    CmpResult result;     ///< valid when ok
};

class CmpRunner
{
  public:
    /** @p jobs 0 resolves via ZBP_JOBS / hardware_concurrency. */
    explicit CmpRunner(unsigned jobs = 0);

    unsigned jobs() const { return nJobs; }

    /** Per-completion callback (one completion per CMP job). */
    void setProgress(runner::ProgressMeter::Callback cb);

    /** JSONL destination; overrides the ZBP_RESULTS_JSONL default.
     * Empty string disables export. */
    void setSinkPath(std::string path);

    /** Resume checkpoint; overrides the ZBP_RESUME_JSONL default. */
    void setResumePath(std::string path);

    /** Run every job; result i corresponds to jobs[i].  A job that
     * throws yields ok=false with the message; the rest still run. */
    std::vector<CmpJobResult> run(const std::vector<CmpJob> &jobs);

  private:
    unsigned nJobs;
    runner::ProgressMeter::Callback progress;
    std::string sinkPath;
    bool sinkPathSet = false;
    std::string resumePath;
    bool resumePathSet = false;
};

/** The per-core record/resume config name of core @p i of job @p name
 * ("<name>#c<i>") — one scheme shared by writer, resume and tests. */
std::string cmpCoreConfigName(const std::string &name, unsigned i);

/** The sharing-record config name of job @p name ("<name>#shared"). */
std::string cmpSharedConfigName(const std::string &name);

/** The sharing record's trace identity: per-core trace names joined
 * with '+' ("cicsdb2+tpf+..."). */
std::string cmpTraceMixId(const std::vector<trace::TraceHandle> &traces);

// ---- environment knobs ----------------------------------------------

/** ZBP_CMP_CORES as a positive integer, or 0 when unset (callers treat
 * 0 as "no override"); warns once on junk. */
unsigned cmpCoresFromEnv();

/** ZBP_BTB2_BANKS as a positive integer, or 0 when unset. */
unsigned cmpBanksFromEnv();

/** ZBP_CMP_ARB ("fcfs" or "tdm"), or @p dflt when unset; warns once on
 * junk. */
preload::ArbPolicy cmpArbPolicyFromEnv(preload::ArbPolicy dflt);

} // namespace zbp::sim

#endif // ZBP_SIM_CMP_CMP_RUNNER_HH
