#include "zbp/sim/cmp/cmp_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <unordered_map>

#include "zbp/cache/dmiss_map.hh"
#include "zbp/ckpt/ckpt.hh"
#include "zbp/common/log.hh"
#include "zbp/obs/obs_config.hh"
#include "zbp/runner/executor.hh"
#include "zbp/runner/jsonl_sink.hh"
#include "zbp/trace/trace_index.hh"

namespace zbp::sim
{

namespace
{

/** Per-worker-thread lane on the orchestration track. */
std::uint32_t
cmpLaneFor(obs::TraceWriter *tw)
{
    static thread_local std::uint32_t lane = 0;
    if (lane == 0)
        lane = tw->newLane(obs::TraceWriter::kPidRunner, "cmp worker");
    return lane;
}

/** Extract an unsigned JSON field from a flat record line; false when
 * the key is absent or unparsable (same tolerance as the generic
 * resume parser: a bad line just fails to match). */
bool
extractU64Field(const std::string &line, const std::string &key,
                std::uint64_t &out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos)
        return false;
    const char *p = line.c_str() + at + needle.size();
    char *end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (end == p)
        return false;
    out = v;
    return true;
}

/** The sharing counters exported per CMP job (order = record order). */
struct SharedField
{
    const char *name;
    std::uint64_t CmpResult::*member;
};

constexpr SharedField kSharedFields[] = {
    {"arbRequests", &CmpResult::arbRequests},
    {"arbGrants", &CmpResult::arbGrants},
    {"arbConflicts", &CmpResult::arbConflicts},
    {"arbWaitCycles", &CmpResult::arbWaitCycles},
    {"arbQueueFullRejects", &CmpResult::arbQueueFullRejects},
    {"l2iHits", &CmpResult::l2iHits},
    {"l2iMisses", &CmpResult::l2iMisses},
    {"faultsInjectedShared", &CmpResult::faultsInjectedShared},
};

std::string
sharingRecord(const CmpJob &job, std::uint64_t seed, double seconds,
              const CmpResult &r)
{
    runner::JsonObject o;
    o.field("trace", cmpTraceMixId(job.traces));
    o.field("config", cmpSharedConfigName(job.name));
    o.field("seed", seed);
    // ok=false keeps runner::loadResumeResults from treating this
    // CMP-level stats line as a resumable per-core job record.
    o.field("ok", false);
    o.field("cmp", true);
    o.field("seconds", seconds);
    o.field("cores", static_cast<std::uint64_t>(r.core.size()));
    for (const auto &f : kSharedFields)
        o.field(f.name, r.*f.member);
    o.field("conflictFraction", r.conflictFraction());
    return o.str();
}

/** Scan a prior results file for the sharing record of (config id,
 * trace mix, seed) and restore its counters into @p r.  Best-effort:
 * a missing record just leaves the sharing stats zeroed. */
bool
loadSharingRecord(const std::string &path, const std::string &config,
                  const std::string &mix, std::uint64_t seed,
                  CmpResult &r)
{
    std::ifstream is(path);
    if (!is)
        return false;
    const std::string config_tag =
            "\"config\":\"" + runner::JsonObject::escape(config) + "\"";
    const std::string trace_tag =
            "\"trace\":\"" + runner::JsonObject::escape(mix) + "\"";
    const std::string seed_tag = "\"seed\":" + std::to_string(seed);
    std::string line;
    while (std::getline(is, line)) {
        if (line.find(config_tag) == std::string::npos ||
            line.find(trace_tag) == std::string::npos ||
            line.find(seed_tag) == std::string::npos)
            continue;
        bool complete = true;
        CmpResult parsed;
        for (const auto &f : kSharedFields) {
            std::uint64_t v = 0;
            if (!extractU64Field(line, f.name, v)) {
                complete = false;
                break;
            }
            parsed.*f.member = v;
        }
        if (!complete)
            continue; // half-written line; keep scanning
        for (const auto &f : kSharedFields)
            r.*f.member = parsed.*f.member;
        return true;
    }
    return false;
}

/**
 * Run a CMP model to completion with optional periodic checkpointing
 * and resume — the CMP twin of the per-core helper in job_runner.cc.
 * With no checkpoint path this is exactly model->run().  @p rebuild
 * reconstructs a fully-wired model after a corrupt restore (a failed
 * restoreState leaves the model half-mutated).
 */
template <typename RebuildFn>
CmpResult
runCmpCheckpointed(std::unique_ptr<CmpModel> &model,
                   const std::vector<const trace::Trace *> &tps,
                   const std::string &ckpt_path, std::uint64_t interval,
                   RebuildFn &&rebuild)
{
    if (ckpt_path.empty())
        return model->run(tps);
    model->beginRun(tps);
    if (ckpt::ckptFileExists(ckpt_path)) {
        try {
            const auto bytes = ckpt::loadCkptFile(ckpt_path);
            ckpt::Reader r(bytes.data(), bytes.size());
            model->restoreState(r);
            r.finish();
            inform("resumed CMP job from checkpoint at ",
                   model->decodedWindow(), " instructions");
        } catch (const ckpt::CkptError &e) {
            warn("discarding unusable CMP checkpoint '", ckpt_path,
                 "' (", e.what(), "); running from scratch");
            ckpt::removeCkptFile(ckpt_path);
            model = rebuild();
            model->beginRun(tps);
        }
    }
    if (interval == 0) {
        model->advance(model->maxInsts());
    } else {
        for (;;) {
            const std::size_t done = model->decodedWindow();
            const std::size_t total = model->maxInsts();
            // The window frontier moves in stepInsts strides and may
            // overshoot the requested target, so clamp defensively.
            const std::size_t step = done >= total
                    ? 0
                    : static_cast<std::size_t>(std::min<std::uint64_t>(
                              interval, total - done));
            if (model->advance(done + step))
                break;
            ckpt::Writer w;
            model->saveState(w);
            w.finish();
            ckpt::saveCkptFile(ckpt_path, w);
        }
    }
    CmpResult r = model->finishRun();
    ckpt::removeCkptFile(ckpt_path);
    return r;
}

unsigned
positiveFromEnv(const char *var)
{
    const char *s = std::getenv(var);
    if (s == nullptr || *s == '\0')
        return 0;
    char *end = nullptr;
    const long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0' || v < 1) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("ignoring bad ", var, " '", s, "'");
        return 0;
    }
    return static_cast<unsigned>(v);
}

} // namespace

std::string
cmpCoreConfigName(const std::string &name, unsigned i)
{
    return name + "#c" + std::to_string(i);
}

std::string
cmpSharedConfigName(const std::string &name)
{
    return name + "#shared";
}

std::string
cmpTraceMixId(const std::vector<trace::TraceHandle> &traces)
{
    std::string mix;
    for (const auto &t : traces) {
        if (!mix.empty())
            mix += '+';
        mix += t->name();
    }
    return mix;
}

unsigned
cmpCoresFromEnv()
{
    return positiveFromEnv("ZBP_CMP_CORES");
}

unsigned
cmpBanksFromEnv()
{
    return positiveFromEnv("ZBP_BTB2_BANKS");
}

preload::ArbPolicy
cmpArbPolicyFromEnv(preload::ArbPolicy dflt)
{
    const char *s = std::getenv("ZBP_CMP_ARB");
    if (s == nullptr || *s == '\0')
        return dflt;
    const std::string v(s);
    if (v == "fcfs")
        return preload::ArbPolicy::kFcfs;
    if (v == "tdm")
        return preload::ArbPolicy::kTdm;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
        warn("ignoring bad ZBP_CMP_ARB '", v, "' (want fcfs or tdm)");
    return dflt;
}

CmpRunner::CmpRunner(unsigned jobs) : nJobs(runner::resolveJobs(jobs)) {}

void
CmpRunner::setProgress(runner::ProgressMeter::Callback cb)
{
    progress = std::move(cb);
}

void
CmpRunner::setSinkPath(std::string path)
{
    sinkPath = std::move(path);
    sinkPathSet = true;
}

void
CmpRunner::setResumePath(std::string path)
{
    resumePath = std::move(path);
    resumePathSet = true;
}

std::vector<CmpJobResult>
CmpRunner::run(const std::vector<CmpJob> &jobs)
{
    using SteadyClock = std::chrono::steady_clock;

    const std::string rpath =
            resumePathSet ? resumePath : runner::resumePathFromEnv();
    std::unordered_map<std::string, runner::SimJobResult> prior;
    if (!rpath.empty())
        prior = runner::loadResumeResults(rpath);

    runner::JsonlSink sink(sinkPathSet ? sinkPath
                                       : runner::JsonlSink::envPath());
    runner::ProgressMeter meter(jobs.size(), progress);
    std::vector<CmpJobResult> results(jobs.size());

    obs::TraceWriter *const tw = obs::globalTraceWriter();
    obs::IntervalWriter *const iw = obs::globalIntervalWriter();
    const std::uint64_t obs_interval = obs::globalIntervalInsts();
    const std::string ckpt_dir = ckpt::ckptDirFromEnv();
    const std::uint64_t ckpt_interval = ckpt::ckptIntervalFromEnv();
    const auto submit_at = SteadyClock::now();
    std::atomic<std::uint64_t> nStarted{0};

    const runner::ParallelExecutor exec(nJobs);
    exec.run(jobs.size(), [&](std::size_t ji) {
        const CmpJob &job = jobs[ji];
        CmpJobResult &out = results[ji];
        const unsigned n = static_cast<unsigned>(job.traces.size());

        const std::uint64_t queue_depth =
                jobs.size() - (nStarted.fetch_add(1) + 1);
        const double queue_s = std::chrono::duration<double>(
                SteadyClock::now() - submit_at).count();
        std::uint32_t lane = 0;
        double job_ts = 0.0;
        if (tw != nullptr) {
            lane = cmpLaneFor(tw);
            job_ts = tw->nowUs();
        }

        // Per-core identity, interchangeable with JobRunner's: seed
        // from (config name, trace name) only, never execution order.
        std::vector<std::uint64_t> seeds(n);
        for (unsigned i = 0; i < n; ++i)
            seeds[i] = runner::JobRunner::deriveSeed(
                    cmpCoreConfigName(job.name, i),
                    job.traces[i]->name());
        const std::string mix = cmpTraceMixId(job.traces);
        const std::uint64_t shared_seed = runner::JobRunner::deriveSeed(
                cmpSharedConfigName(job.name), mix);

        // All-or-nothing resume: the job is satisfied only when every
        // per-core record is in the checkpoint.
        if (!prior.empty() && n != 0) {
            bool all = true;
            std::vector<const runner::SimJobResult *> hits(n, nullptr);
            for (unsigned i = 0; i < n; ++i) {
                const auto it = prior.find(runner::resumeKey(
                        cmpCoreConfigName(job.name, i),
                        job.traces[i]->name(), seeds[i]));
                if (it == prior.end()) {
                    all = false;
                    break;
                }
                hits[i] = &it->second;
            }
            if (all) {
                out.ok = true;
                out.resumed = true;
                out.result.core.reserve(n);
                for (unsigned i = 0; i < n; ++i) {
                    out.result.core.push_back(hits[i]->result);
                    out.seconds += hits[i]->seconds;
                }
                loadSharingRecord(rpath,
                                  cmpSharedConfigName(job.name), mix,
                                  shared_seed, out.result);
                meter.jobDone(job.name + " (resumed)", 0.0);
                return;
            }
        }

        const auto t0 = SteadyClock::now();
        try {
            // Shared read-only sidecars, deduplicated by trace: a
            // homogeneous mix indexes its one trace once, not once per
            // core.  The job's cores share one machine configuration,
            // so one D-cache outcome map per distinct trace suffices.
            std::unordered_map<const trace::Trace *,
                               std::unique_ptr<trace::TraceIndex>> indexes;
            std::unordered_map<const trace::Trace *,
                               std::vector<std::uint8_t>> dmaps;
            std::vector<const trace::Trace *> tps(n);
            for (unsigned i = 0; i < n; ++i) {
                const trace::Trace *tp = &*job.traces[i];
                tps[i] = tp;
                auto &idx = indexes[tp];
                if (!idx)
                    idx = std::make_unique<trace::TraceIndex>(*tp);
                if (job.cfg.dcacheEnabled) {
                    auto &map = dmaps[tp];
                    if (map.empty())
                        map = cache::computeDataMissMap(*tp,
                                                        job.cfg.dcache);
                }
            }

            const auto buildModel = [&] {
                auto m = std::make_unique<CmpModel>(job.cfg);
                if (iw != nullptr)
                    m->attachObs(iw, obs_interval, job.name);
                if (tw != nullptr)
                    m->attachTracer(tw);
                for (unsigned i = 0; i < n; ++i) {
                    m->setTraceIndex(i, indexes[tps[i]].get());
                    if (job.cfg.dcacheEnabled)
                        m->setDataMissMap(i, &dmaps[tps[i]]);
                }
                return m;
            };
            auto model = buildModel();
            const std::string ckpt_path = ckpt_dir.empty()
                    ? std::string()
                    : ckpt::ckptPathFor(ckpt_dir,
                                        "cmp\x1f" + job.name + "\x1f" +
                                                mix);
            out.result = runCmpCheckpointed(model, tps, ckpt_path,
                                            ckpt_interval, buildModel);
            out.ok = true;
        } catch (const std::exception &e) {
            out.ok = false;
            out.error = e.what();
            // The process may be dying with the job; push buffered
            // observability rows to disk first.
            obs::obsFlush();
        }
        out.seconds = std::chrono::duration<double>(SteadyClock::now() -
                                                    t0).count();

        if (out.ok) {
            // Per-core records, byte-compatible with the generic
            // runner path; job wall-clock split evenly (cores of a CMP
            // advance in lockstep, their time is not separable).
            for (unsigned i = 0; i < n; ++i) {
                runner::SimJob cj(cmpCoreConfigName(job.name, i),
                                  job.cfg, &*job.traces[i], seeds[i]);
                runner::SimJobResult cr;
                cr.ok = true;
                cr.seconds = out.seconds / n;
                cr.result = out.result.core[i];
                cr.telemetry.collected = true;
                cr.telemetry.queueSeconds = queue_s;
                cr.telemetry.queueDepth = queue_depth;
                cr.telemetry.runSeconds = cr.seconds;
                sink.write(runner::jobRecord(cj, cr));
            }
            sink.write(sharingRecord(job, shared_seed, out.seconds,
                                     out.result));
        } else {
            // One failure record under the job's own name so the
            // failed sweep is visible in the results file.
            runner::SimJob cj(job.name, job.cfg,
                              n != 0 ? &*job.traces[0] : nullptr, 0);
            runner::SimJobResult cr;
            cr.ok = false;
            cr.error = out.error;
            cr.seconds = out.seconds;
            sink.write(runner::jobRecord(cj, cr));
        }
        if (tw != nullptr)
            tw->span(obs::TraceWriter::kPidRunner, lane, "cmp",
                     std::string("cmp:") + job.name, job_ts,
                     tw->nowUs() - job_ts,
                     {{"ok", out.ok ? "true" : "false"},
                      {"cores", obs::jsonNum(
                               static_cast<std::uint64_t>(n))}});
        meter.jobDone(job.name, out.seconds);
    });
    return results;
}

} // namespace zbp::sim
