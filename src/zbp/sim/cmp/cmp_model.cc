#include "zbp/sim/cmp/cmp_model.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "zbp/obs/trace_writer.hh"

namespace zbp::sim
{

namespace
{

/** Stable per-core fault seed: distinct cores must draw distinct
 * corruption streams from one configured seed (SplitMix64 finalizer —
 * the same mix the workload generators use). */
std::uint64_t
mixSeed(std::uint64_t seed, unsigned core)
{
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (core + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

CmpModel::CmpModel(const core::MachineParams &p) : prm(p)
{
    prm.validate();
    const unsigned n = prm.cmp.cores;

    cpu::SharedCoreContext ctx;
    if (prm.btb2Enabled) {
        btb2 = std::make_unique<btb::SetAssocBtb>("btb2", prm.btb2);
        arb = std::make_unique<preload::Btb2Arbiter>(
                preload::Btb2ArbiterParams{n, prm.cmp.btb2Banks,
                                           prm.cmp.arbQueueDepth,
                                           prm.cmp.arbPolicy},
                prm.btb2.rowBytes);
        ctx.btb2 = btb2.get();
        ctx.arbiter = arb.get();
    }
    if (prm.cmp.sharedL2i) {
        l2i = std::make_unique<cache::SharedL2I>(prm.cmp.l2i, n);
        ctx.l2i = l2i.get();
    }

    // Shared structures get a CMP-owned injector so a shared-array
    // corruption happens once, not once per core; the cores' private
    // injectors draw per-core streams from mixed seeds.
    if (prm.faults.enabled) {
        inj = std::make_unique<fault::FaultInjector>(prm.faults);
        if (btb2)
            btb2->attachFaultInjector(*inj, fault::Site::kBtb2);
        if (arb)
            arb->attachFaultInjector(*inj);
    }

    cs.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        core::MachineParams cp = prm;
        if (n > 1)
            cp.faults.seed = mixSeed(prm.faults.seed, i);
        ctx.coreId = i;
        cs.push_back(std::make_unique<cpu::CoreModel>(cp, ctx));
    }
}

CmpModel::~CmpModel() = default;

void
CmpModel::attachObs(obs::IntervalWriter *w, std::uint64_t interval,
                    const std::string &config_name)
{
    for (auto &c : cs)
        c->attachObs(w, interval, config_name);
}

void
CmpModel::attachTracer(obs::TraceWriter *t)
{
    tracer = t;
    for (auto &c : cs)
        c->attachTracer(t);
    if (t == nullptr) {
        cmpLane = 0;
        injTraced = false;
        if (arb)
            arb->setTracer(nullptr, 0);
        if (inj)
            inj->setTracer(nullptr, 0);
        return;
    }
    cmpLane = t->newLane(obs::TraceWriter::kPidRunner, "cmp windows");
    if (arb)
        arb->setTracer(t, t->newLane(obs::TraceWriter::kPidUarch,
                                     "shared arbiter"));
    if (inj) {
        inj->setTracer(t, t->newLane(obs::TraceWriter::kPidUarch,
                                     "shared faults"));
        injTraced = true;
    }
}

void
CmpModel::beginRun(const std::vector<const trace::Trace *> &traces)
{
    ZBP_ASSERT(!runActive, "beginRun() while a CMP run is active");
    if (traces.size() != cs.size())
        throw std::invalid_argument(
                "CmpModel::beginRun: " + std::to_string(traces.size()) +
                " traces for " + std::to_string(cs.size()) + " cores");
    len.assign(cs.size(), 0);
    coreDone.assign(cs.size(), false);
    maxLen = 0;
    window = 0;
    rot = 0;
    if (inj)
        inj->reset();
    for (std::size_t i = 0; i < cs.size(); ++i) {
        if (traces[i] == nullptr)
            throw std::invalid_argument("CmpModel::beginRun: null trace");
        len[i] = traces[i]->size();
        maxLen = std::max(maxLen, len[i]);
        cs[i]->beginRun(*traces[i]);
    }
    runActive = true;
}

bool
CmpModel::advance(std::size_t decode_target)
{
    ZBP_ASSERT(runActive, "advance() without beginRun()");
    const std::size_t target = std::min(decode_target, maxLen);
    const unsigned n = cores();

    const std::size_t win0 = window;
    const double adv_ts = tracer != nullptr ? tracer->nowUs() : 0.0;
    // The shared injector has no cycle clock of its own (cores each run
    // their own); stamp its instants at window granularity — the same
    // resolution the sharing model itself has.
    if (injTraced)
        inj->noteCycle(static_cast<Cycle>(window));

    while (window < target) {
        // Windows land on absolute stepInsts boundaries (never on the
        // caller's target), so every monotone target sequence produces
        // the same window schedule — and therefore the same shared-
        // state access order — as one full-length advance().
        window = std::min(window + prm.cmp.stepInsts, maxLen);
        bool all_done = true;
        // Rotate which core steps first so no core is systematically
        // older than its siblings at the arbiter (with one core the
        // rotation is the identity — the N=1 equivalence depends on
        // nothing here but the advance() targets being monotone).
        for (unsigned k = 0; k < n; ++k) {
            const unsigned ci = (rot + k) % n;
            if (coreDone[ci])
                continue;
            coreDone[ci] = cs[ci]->advance(std::min(window, len[ci]));
            if (!coreDone[ci])
                all_done = false;
        }
        rot = (rot + 1) % n;
        if (injTraced)
            inj->noteCycle(static_cast<Cycle>(window));
        if (all_done)
            break;
    }

    if (tracer != nullptr && window > win0)
        tracer->span(obs::TraceWriter::kPidRunner, cmpLane, "cmp",
                     "cmp:window", adv_ts, tracer->nowUs() - adv_ts,
                     {{"from", obs::jsonNum(
                               static_cast<std::uint64_t>(win0))},
                      {"to", obs::jsonNum(
                               static_cast<std::uint64_t>(window))},
                      {"cores", obs::jsonNum(
                               static_cast<std::uint64_t>(n))}});

    for (unsigned ci = 0; ci < n; ++ci)
        if (!coreDone[ci])
            return false;
    return true;
}

CmpResult
CmpModel::finishRun()
{
    ZBP_ASSERT(runActive, "finishRun() without beginRun()");
    runActive = false;

    CmpResult r;
    r.core.reserve(cs.size());
    for (auto &c : cs)
        r.core.push_back(c->finishRun());

    if (arb) {
        r.arbRequests = arb->requests();
        r.arbGrants = arb->grants();
        r.arbConflicts = arb->conflicts();
        r.arbWaitCycles = arb->conflictWaitCycles();
        r.arbQueueFullRejects = arb->queueFullRejects();
        r.coreGrants = arb->coreGrants();
        r.coreWaitCycles = arb->coreWaitCycles();
        r.bankGrants = arb->bankGrants();
    }
    if (l2i) {
        r.l2iHits = l2i->hits();
        r.l2iMisses = l2i->misses();
        r.l2iCoreHits = l2i->coreHits();
        r.l2iCoreMisses = l2i->coreMisses();
    }
    r.faultsInjectedShared = inj ? inj->injected() : 0;
    return r;
}

CmpResult
CmpModel::run(const std::vector<const trace::Trace *> &traces)
{
    beginRun(traces);
    advance(maxLen);
    return finishRun();
}

void
CmpModel::saveState(ckpt::Writer &w) const
{
    ZBP_ASSERT(runActive, "saveState() without an armed CMP run");
    w.beginSection(ckpt::tag::kCmp);
    w.putU32(cores());
    w.putU64(window);
    w.putU64(maxLen);
    w.putU32(rot);
    for (std::size_t i = 0; i < cs.size(); ++i) {
        w.putU64(len[i]);
        w.putBool(coreDone[i]);
    }
    w.endSection();
    if (btb2)
        btb2->saveState(w);
    if (arb)
        arb->saveState(w);
    if (l2i)
        l2i->saveState(w);
    if (inj)
        inj->saveState(w);
    for (const auto &c : cs)
        c->saveState(w);
}

void
CmpModel::restoreState(ckpt::Reader &r)
{
    ZBP_ASSERT(runActive, "restoreState() without an armed CMP run");
    r.openSection(ckpt::tag::kCmp);
    if (r.getU32() != cores())
        throw ckpt::CkptError("CMP core count mismatch");
    const std::uint64_t win = r.getU64();
    if (r.getU64() != maxLen)
        throw ckpt::CkptError("CMP trace length mismatch");
    const std::uint32_t ro = r.getU32();
    if (ro >= cores())
        throw ckpt::CkptError("CMP rotation cursor out of range");
    std::vector<bool> done(cs.size());
    for (std::size_t i = 0; i < cs.size(); ++i) {
        if (r.getU64() != len[i])
            throw ckpt::CkptError("CMP per-core trace length mismatch");
        done[i] = r.getBool();
    }
    r.closeSection();
    window = static_cast<std::size_t>(win);
    rot = ro;
    coreDone = std::move(done);
    if (btb2)
        btb2->restoreState(r);
    if (arb)
        arb->restoreState(r);
    if (l2i)
        l2i->restoreState(r);
    if (inj)
        inj->restoreState(r);
    for (auto &c : cs)
        c->restoreState(r);
}

} // namespace zbp::sim
