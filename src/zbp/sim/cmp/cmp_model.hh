/**
 * @file
 * CmpModel — an N-core chip multiprocessor stepping N CoreModel front
 * ends in lockstep against one shared, banked BTB2.
 *
 * The paper evaluates BTB2 under a time-sliced single core: context
 * switches thrash capacity, but cores never coexist, so second-level
 * *contention* is never measured.  This model measures it.  Each core
 * keeps the private structures a real CMP would (BTB1, BTBP, PHT, CTB,
 * FIT, SOT, L1I/L1D, its own transfer engine and search pipeline); the
 * BTB2 array is one shared structure whose read port is banked and
 * arbitrated (Btb2Arbiter), and optionally one shared L2I sits behind
 * the per-core L1Is.  Sharing is therefore visible on both axes the
 * CMP question cares about:
 *
 *  - capacity: all cores install victims and surprises into one array,
 *    so overlapping instruction footprints prefetch for each other
 *    (constructive) and disjoint footprints evict each other
 *    (destructive);
 *  - bandwidth: bulk transfers from different cores collide on BTB2
 *    banks and queue at the arbiter.
 *
 * Lockstep and clock domains: each core advances with its own cycle
 * counter (the PR 4 beginRun/advance/finishRun split, unchanged), and
 * the CMP interleaves them in instruction windows of CmpParams::
 * stepInsts, rotating which core steps first each window so no core is
 * systematically older at the arbiter.  Cross-core time is therefore
 * aligned only at window granularity — the sharing model is
 * statistical, not cycle-faithful (DESIGN.md §9).  Cores run
 * sequentially on the calling thread; parallelism stays at the
 * job/trace level where determinism is free.
 *
 * Degenerate single-core invariant: with cores=1, one bank, and the
 * shared L2I off, the arbiter grants every read at its request cycle
 * with zero wait and the rotation is the identity, so a CmpModel run is
 * bit-identical to a plain CoreModel run (golden counters pin this).
 */

#ifndef ZBP_SIM_CMP_CMP_MODEL_HH
#define ZBP_SIM_CMP_CMP_MODEL_HH

#include <atomic>
#include <memory>
#include <vector>

#include "zbp/cpu/core_model.hh"

namespace zbp::obs
{
class IntervalWriter;
class TraceWriter;
} // namespace zbp::obs

namespace zbp::sim
{

/** Everything an N-core CMP run reports. */
struct CmpResult
{
    /** Per-core results, exactly what a CoreModel run reports. */
    std::vector<cpu::SimResult> core;

    // Shared-BTB2 arbiter (sharing/bandwidth axis).
    std::uint64_t arbRequests = 0;
    std::uint64_t arbGrants = 0;
    std::uint64_t arbConflicts = 0;      ///< grants delayed by a busy bank
    std::uint64_t arbWaitCycles = 0;
    std::uint64_t arbQueueFullRejects = 0;
    std::vector<std::uint64_t> coreGrants;
    std::vector<std::uint64_t> coreWaitCycles;
    std::vector<std::uint64_t> bankGrants;

    // Shared L2I (when enabled).
    std::uint64_t l2iHits = 0;
    std::uint64_t l2iMisses = 0;
    std::vector<std::uint64_t> l2iCoreHits;
    std::vector<std::uint64_t> l2iCoreMisses;

    /** Faults injected into the shared structures (the per-core
     * injectors report theirs in core[i].faultsInjected). */
    std::uint64_t faultsInjectedShared = 0;

    /** Fraction of granted row reads that hit a busy bank. */
    double
    conflictFraction() const
    {
        return arbGrants == 0 ? 0.0
                              : static_cast<double>(arbConflicts) /
                                        static_cast<double>(arbGrants);
    }
};

/** One N-core machine, runnable over N traces (one per core). */
class CmpModel
{
  public:
    /** Builds p.cmp.cores cores.  When the BTB2 is enabled, the shared
     * array, its arbiter and (optionally) the shared L2I are built here
     * and wired into every core; fault injection covers them through a
     * CMP-owned injector so shared corruption happens once, not once
     * per core. */
    explicit CmpModel(const core::MachineParams &p);
    ~CmpModel();

    CmpModel(const CmpModel &) = delete;
    CmpModel &operator=(const CmpModel &) = delete;

    /** Simulate every core's trace to completion.  Equivalent to
     * beginRun(traces); advance(longest trace); finishRun(). */
    CmpResult run(const std::vector<const trace::Trace *> &traces);

    /** Arm a run: exactly cores() traces, each outliving the run.
     * Throws std::invalid_argument on a count mismatch or any empty
     * trace. */
    void beginRun(const std::vector<const trace::Trace *> &traces);

    /**
     * Step every unfinished core until it has decoded at least
     * min(@p decode_target, its trace length) instructions, in lockstep
     * windows of CmpParams::stepInsts.  Windows land on absolute
     * stepInsts boundaries, so the last one may overshoot the target by
     * up to stepInsts-1 instructions — that is what makes any monotone
     * target sequence bit-identical to a single full-length advance()
     * (unaligned stops would insert extra cross-core interleaving
     * points and change the shared-state access order).  Returns true
     * when every core's trace is fully decoded.
     */
    bool advance(std::size_t decode_target);

    /** Finish a fully-decoded run and collect the results. */
    CmpResult finishRun();

    unsigned cores() const { return static_cast<unsigned>(cs.size()); }

    /** Longest armed trace (the natural advance() completion target). */
    std::size_t maxInsts() const { return maxLen; }

    /** The common decode frontier (instructions) of the armed run. */
    std::size_t decodedWindow() const { return window; }

    /** True between beginRun() and finishRun(). */
    bool runInProgress() const { return runActive; }

    /** Serialize the whole CMP — window state, shared BTB2/arbiter/
     * L2I/injector, then every core — into @p w.  Valid only between
     * beginRun() and finishRun(). */
    void saveState(ckpt::Writer &w) const;

    /** Overwrite the armed run from a checkpoint (beginRun() with the
     * same traces first).  Throws ckpt::CkptError on mismatch or
     * corruption — the model is then half-restored and must be
     * discarded. */
    void restoreState(ckpt::Reader &r);
    cpu::CoreModel &core(unsigned i) { return *cs.at(i); }
    preload::Btb2Arbiter *arbiter() { return arb.get(); }
    btb::SetAssocBtb *sharedBtb2() { return btb2.get(); }
    cache::SharedL2I *sharedL2i() { return l2i.get(); }

    /** The injector covering the shared structures, or nullptr. */
    fault::FaultInjector *sharedFaultInjector() { return inj.get(); }

    /** Attach per-core read-only sidecars (see CoreModel). */
    void
    setTraceIndex(unsigned i, const trace::TraceIndex *idx)
    {
        cs.at(i)->setTraceIndex(idx);
    }
    void
    setDataMissMap(unsigned i, const std::vector<std::uint8_t> *map)
    {
        cs.at(i)->setDataMissMap(map);
    }

    /** Cooperative cancellation, polled by every core's run loop. */
    void
    setCancelFlag(const std::atomic<bool> *flag)
    {
        for (auto &c : cs)
            c->setCancelFlag(flag);
    }

    /** Attach interval sampling to every core (see CoreModel::attachObs;
     * the per-core `core` column keeps the sidecar rows apart).  Call
     * before beginRun(); null/0 detaches. */
    void attachObs(obs::IntervalWriter *w, std::uint64_t interval,
                   const std::string &config_name);

    /** Attach timeline tracing: every core's microarch lanes, plus
     * shared-structure lanes (arbiter waits, shared-fault instants) and
     * a runner-track lane carrying one span per advance() window batch.
     * Null detaches. */
    void attachTracer(obs::TraceWriter *t);

  private:
    core::MachineParams prm;
    std::unique_ptr<btb::SetAssocBtb> btb2; ///< the shared second level
    std::unique_ptr<preload::Btb2Arbiter> arb;
    std::unique_ptr<cache::SharedL2I> l2i;  ///< null unless cmp.sharedL2i
    std::unique_ptr<fault::FaultInjector> inj; ///< shared-structure faults
    std::vector<std::unique_ptr<cpu::CoreModel>> cs;

    // Run state.
    std::vector<std::size_t> len;  ///< per-core trace length
    std::vector<bool> coreDone;
    std::size_t window = 0;        ///< common decode frontier
    std::size_t maxLen = 0;
    unsigned rot = 0;              ///< rotating window start core
    bool runActive = false;

    // Observability (null/0 = off; zero cost on the hot path).
    obs::TraceWriter *tracer = nullptr;
    std::uint32_t cmpLane = 0;     ///< runner-track lane for window spans
    bool injTraced = false;        ///< shared injector has a tracer lane
};

} // namespace zbp::sim

#endif // ZBP_SIM_CMP_CMP_MODEL_HH
