/**
 * @file
 * Plain-text machine configuration: "section.key = value" lines parsed
 * into a MachineParams, so experiments can be scripted without
 * recompiling.  '#' starts a comment; unknown keys are errors (typos in
 * sweep scripts must not silently run the default machine).
 *
 * Example:
 *     # half-size second level, eDRAM cadence
 *     btb2.rows = 2048
 *     engine.rowReadInterval = 2
 *     search.missSearchLimit = 4
 *     btb2Enabled = true
 */

#ifndef ZBP_SIM_MACHINE_CONFIG_HH
#define ZBP_SIM_MACHINE_CONFIG_HH

#include <string>

#include "zbp/core/params.hh"

namespace zbp::sim
{

/** Result of a parse attempt. */
struct ParseResult
{
    bool ok = true;
    std::string error;   ///< first problem found (empty when ok)
    unsigned line = 0;   ///< 1-based line of the problem
};

/**
 * Apply "section.key = value" directives from @p text to @p params.
 * On error, @p params is left in a partially-updated state and the
 * result identifies the offending line.
 */
ParseResult applyConfigText(const std::string &text,
                            core::MachineParams &params);

/** Load a configuration file over @p params. */
ParseResult applyConfigFile(const std::string &path,
                            core::MachineParams &params);

/** All recognized keys, one per line (for --help style output). */
std::string configKeyList();

} // namespace zbp::sim

#endif // ZBP_SIM_MACHINE_CONFIG_HH
