/**
 * @file
 * Machine-readable experiment output: CSV and a minimal JSON encoder
 * for SimResult batches, so sweeps can feed plotting scripts directly.
 */

#ifndef ZBP_SIM_REPORT_HH
#define ZBP_SIM_REPORT_HH

#include <string>
#include <vector>

#include "zbp/cpu/core_model.hh"

namespace zbp::sim
{

/** Column header matching resultCsvRow(). */
std::string resultCsvHeader();

/** One CSV row (no trailing newline) for @p r, first column @p label. */
std::string resultCsvRow(const std::string &label,
                         const cpu::SimResult &r);

/** Whole-batch CSV (header + one row per result, labelled by trace). */
std::string resultsToCsv(const std::vector<cpu::SimResult> &results);

/** One JSON object for @p r (stable key order, no external deps). */
std::string resultToJson(const cpu::SimResult &r);

/** JSON array of result objects. */
std::string resultsToJson(const std::vector<cpu::SimResult> &results);

} // namespace zbp::sim

#endif // ZBP_SIM_REPORT_HH
