#include "zbp/sim/gang_runner.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <unordered_map>

#include "zbp/cache/dmiss_map.hh"
#include "zbp/ckpt/ckpt.hh"
#include "zbp/common/log.hh"
#include "zbp/cpu/core_model.hh"
#include "zbp/obs/obs_config.hh"
#include "zbp/runner/executor.hh"
#include "zbp/runner/jsonl_sink.hh"
#include "zbp/trace/trace_index.hh"

namespace zbp::sim
{

namespace
{

constexpr std::size_t kDefaultChunk = 262144;

/** One config's in-flight state while its gang walks a trace. */
struct GangMember
{
    cpu::CoreModel *model = nullptr; ///< null = resumed or failed
    bool done = false;
    double seconds = 0.0; ///< wall-clock accumulated in this member
};

/** Per-worker-thread lane on the orchestration track. */
std::uint32_t
gangLane(obs::TraceWriter *tw)
{
    static thread_local std::uint32_t lane = 0;
    if (lane == 0)
        lane = tw->newLane(obs::TraceWriter::kPidRunner, "gang worker");
    return lane;
}

} // namespace

std::size_t
gangChunkFromEnv()
{
    const char *s = std::getenv("ZBP_GANG_CHUNK");
    if (s == nullptr || *s == '\0')
        return kDefaultChunk;
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < 1) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("ignoring bad ZBP_GANG_CHUNK '", s, "'");
        return kDefaultChunk;
    }
    return static_cast<std::size_t>(v);
}

std::size_t
gangMicroChunkFromEnv()
{
    const char *s = std::getenv("ZBP_GANG_MICROCHUNK");
    if (s == nullptr || *s == '\0')
        return 0;
    char *end = nullptr;
    const long long v = std::strtoll(s, &end, 10);
    if (end == s || *end != '\0' || v < 1) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("ignoring bad ZBP_GANG_MICROCHUNK '", s, "'");
        return 0;
    }
    return static_cast<std::size_t>(v);
}

GangRunner::GangRunner(std::vector<GangConfig> configs_, unsigned jobs)
    : configs(std::move(configs_)), nJobs(runner::resolveJobs(jobs)),
      chunk(gangChunkFromEnv()), microChunk(gangMicroChunkFromEnv())
{
    ZBP_ASSERT(!configs.empty(), "a gang needs at least one config");
}

void
GangRunner::setChunk(std::size_t c)
{
    ZBP_ASSERT(c >= 1, "gang chunk must be >= 1");
    chunk = c;
}

void
GangRunner::setMicroChunk(std::size_t m)
{
    microChunk = m;
}

void
GangRunner::setProgress(runner::ProgressMeter::Callback cb)
{
    progress = std::move(cb);
}

void
GangRunner::setSinkPath(std::string path)
{
    sinkPath = std::move(path);
    sinkPathSet = true;
}

void
GangRunner::setResumePath(std::string path)
{
    resumePath = std::move(path);
    resumePathSet = true;
}

std::vector<std::vector<runner::SimJobResult>>
GangRunner::run(const std::vector<trace::TraceHandle> &traces)
{
    using SteadyClock = std::chrono::steady_clock;
    const std::size_t nc = configs.size();
    const std::size_t nt = traces.size();

    const std::string rpath =
            resumePathSet ? resumePath : runner::resumePathFromEnv();
    std::unordered_map<std::string, runner::SimJobResult> prior;
    if (!rpath.empty())
        prior = runner::loadResumeResults(rpath);

    runner::JsonlSink sink(sinkPathSet ? sinkPath
                                       : runner::JsonlSink::envPath());
    runner::ProgressMeter meter(nc * nt, progress);

    std::vector<std::vector<runner::SimJobResult>> results(nc);
    for (auto &row : results)
        row.resize(nt);

    obs::TraceWriter *const tw = obs::globalTraceWriter();
    obs::IntervalWriter *const iw = obs::globalIntervalWriter();
    const std::uint64_t obs_interval = obs::globalIntervalInsts();
    const std::string ckpt_dir = ckpt::ckptDirFromEnv();
    const std::uint64_t ckpt_interval = ckpt::ckptIntervalFromEnv();
    // One snapshot per (gang, trace): the members advance in lockstep,
    // so a single file holds the frontier plus every member's machine.
    const auto gangCkptKey = [&](const std::string &trace_name) {
        std::string key = "gang";
        for (const GangConfig &gc : configs) {
            key += '\x1f';
            key += gc.name;
        }
        key += '\x1f';
        key += trace_name;
        return key;
    };
    const auto submit_at = SteadyClock::now();
    std::atomic<std::uint64_t> nStarted{0};

    // Per-config seeds depend only on (config, trace) identity —
    // identical to what JobRunner derives, so records and resume keys
    // are interchangeable between the two paths.
    const runner::ParallelExecutor exec(nJobs);
    exec.run(nt, [&](std::size_t ti) {
        const trace::TraceHandle &th = traces[ti];
        const trace::Trace &t = *th;
        const std::size_t n = t.size();

        const std::uint64_t queue_depth =
                nt - (nStarted.fetch_add(1) + 1);
        const double queue_s = std::chrono::duration<double>(
                SteadyClock::now() - submit_at).count();
        std::uint32_t lane = 0;
        double gang_ts = 0.0;
        if (tw != nullptr) {
            lane = gangLane(tw);
            gang_ts = tw->nowUs();
        }

        // The shared read-only sidecars: computed once, consumed by
        // every model of the gang.  D-cache outcome maps are keyed by
        // geometry — one per distinct (size, ways, line) in the gang.
        const trace::TraceIndex index(t);
        std::vector<std::pair<cache::ICacheParams,
                              std::vector<std::uint8_t>>> dmaps;
        const auto dmissFor =
                [&](const core::MachineParams &cfg)
                -> const std::vector<std::uint8_t> * {
            if (!cfg.dcacheEnabled)
                return nullptr;
            for (const auto &[geom, map] : dmaps)
                if (cache::sameDataMissGeometry(geom, cfg.dcache))
                    return &map;
            dmaps.reserve(nc); // keep earlier maps' addresses stable
            dmaps.emplace_back(cfg.dcache,
                               cache::computeDataMissMap(t, cfg.dcache));
            return &dmaps.back().second;
        };

        std::vector<std::unique_ptr<cpu::CoreModel>> models(nc);
        std::vector<GangMember> members(nc);
        std::vector<std::uint64_t> seeds(nc);

        const auto fail = [&](std::size_t ci, const std::string &what) {
            runner::SimJobResult &out = results[ci][ti];
            out.ok = false;
            out.error = what;
            members[ci].model = nullptr;
            models[ci].reset();
            // The process may be about to die with the gang; make sure
            // observability rows collected so far reach the disk.
            obs::obsFlush();
        };

        const auto buildMember = [&](std::size_t ci) {
            models[ci] = std::make_unique<cpu::CoreModel>(configs[ci].cfg);
            models[ci]->setTraceIndex(&index);
            models[ci]->setDataMissMap(dmissFor(configs[ci].cfg));
            if (iw != nullptr)
                models[ci]->attachObs(iw, obs_interval, configs[ci].name);
            if (tw != nullptr)
                models[ci]->attachTracer(tw);
            models[ci]->beginRun(t);
            members[ci].model = models[ci].get();
            members[ci].done = false;
        };

        for (std::size_t ci = 0; ci < nc; ++ci) {
            seeds[ci] = runner::JobRunner::deriveSeed(configs[ci].name,
                                                      t.name());
            results[ci][ti].attempts = 1;
            if (!prior.empty()) {
                const auto it = prior.find(runner::resumeKey(
                        configs[ci].name, t.name(), seeds[ci]));
                if (it != prior.end()) {
                    // Satisfied by the checkpoint: not re-run, not
                    // re-written to the sink.
                    results[ci][ti] = it->second;
                    meter.jobDone(configs[ci].name + "/" + t.name() +
                                          " (resumed)", 0.0);
                    continue;
                }
            }
            const auto t0 = SteadyClock::now();
            try {
                buildMember(ci);
            } catch (const std::exception &e) {
                fail(ci, e.what());
            }
            const double setup_s = std::chrono::duration<double>(
                    SteadyClock::now() - t0).count();
            members[ci].seconds += setup_s;
            results[ci][ti].telemetry.loadSeconds = setup_s;
        }

        // Mid-trace resume: a gang snapshot stores the shared frontier,
        // each member's presence/done flags, and every live member's
        // full machine state.  The member set must match exactly — a
        // checkpoint taken with a different gang composition (e.g. a
        // member since satisfied from the resume JSONL) is unusable.
        std::size_t prev = 0;
        const std::string ckpt_path = ckpt_dir.empty()
                ? std::string()
                : ckpt::ckptPathFor(ckpt_dir, gangCkptKey(t.name()));
        if (!ckpt_path.empty() && ckpt::ckptFileExists(ckpt_path)) {
            try {
                const auto bytes = ckpt::loadCkptFile(ckpt_path);
                ckpt::Reader r(bytes.data(), bytes.size());
                r.openSection(ckpt::tag::kGang);
                if (r.getU32() != nc)
                    throw ckpt::CkptError("gang member count mismatch");
                const std::uint64_t saved_prev = r.getU64();
                if (saved_prev > n)
                    throw ckpt::CkptError("gang frontier out of range");
                std::vector<std::uint8_t> flags(nc);
                for (std::uint8_t &fl : flags)
                    fl = r.getU8();
                r.closeSection();
                for (std::size_t ci = 0; ci < nc; ++ci)
                    if (((flags[ci] & 1u) != 0) !=
                        (members[ci].model != nullptr))
                        throw ckpt::CkptError("gang member set mismatch");
                for (std::size_t ci = 0; ci < nc; ++ci) {
                    if (members[ci].model == nullptr)
                        continue;
                    members[ci].model->restoreState(r);
                    members[ci].done = (flags[ci] & 2u) != 0;
                }
                r.finish();
                prev = static_cast<std::size_t>(saved_prev);
                inform("resumed gang over '", t.name(),
                       "' from checkpoint at ", prev, " instructions");
            } catch (const ckpt::CkptError &e) {
                warn("discarding unusable gang checkpoint '", ckpt_path,
                     "' (", e.what(), "); running '", t.name(),
                     "' from scratch");
                ckpt::removeCkptFile(ckpt_path);
                prev = 0;
                // A failed restore leaves earlier members half-mutated;
                // rebuild every modelled member from scratch.
                for (std::size_t ci = 0; ci < nc; ++ci) {
                    if (members[ci].model == nullptr)
                        continue;
                    try {
                        buildMember(ci);
                    } catch (const std::exception &e2) {
                        fail(ci, e2.what());
                    }
                }
            }
        }
        std::uint64_t next_ckpt_at = prev + ckpt_interval;

        // Chunk-interleaved walk: every live member decodes the same
        // [prev, target) instruction window before the window moves.
        // With micro-chunking on, the window itself is walked in
        // member-interleaved sub-windows so the members revisit a
        // still-cache-hot trace slice instead of streaming the whole
        // chunk alone; advance() cuts only at decode boundaries, so
        // results are bit-identical either way.
        const auto stepTo = [&](std::size_t upto) {
            for (std::size_t ci = 0; ci < nc; ++ci) {
                GangMember &m = members[ci];
                if (m.model == nullptr || m.done)
                    continue;
                const auto t0 = SteadyClock::now();
                try {
                    m.done = m.model->advance(upto);
                } catch (const std::exception &e) {
                    fail(ci, e.what());
                }
                m.seconds += std::chrono::duration<double>(
                        SteadyClock::now() - t0).count();
            }
        };
        for (;;) {
            const std::size_t tgt = std::min(prev + chunk, n);
            std::uint64_t live = 0;
            for (std::size_t ci = 0; ci < nc; ++ci)
                if (members[ci].model != nullptr && !members[ci].done)
                    ++live;
            const double chunk_ts = tw != nullptr ? tw->nowUs() : 0.0;
            if (microChunk != 0 && live > 1 &&
                prev + microChunk < tgt) {
                for (std::size_t sub = prev + microChunk;;
                     sub += microChunk) {
                    const std::size_t s = std::min(sub, tgt);
                    stepTo(s);
                    if (s == tgt)
                        break;
                }
            } else {
                stepTo(tgt);
            }
            bool any_live = false;
            for (std::size_t ci = 0; ci < nc; ++ci)
                if (members[ci].model != nullptr && !members[ci].done)
                    any_live = true;
            if (tw != nullptr && live > 0)
                tw->span(obs::TraceWriter::kPidRunner, lane, "gang",
                         "chunk", chunk_ts, tw->nowUs() - chunk_ts,
                         {{"target", obs::jsonNum(static_cast<
                                   std::uint64_t>(tgt))},
                          {"live", obs::jsonNum(live)}});
            if (!any_live)
                break;
            if (!ckpt_path.empty() && ckpt_interval > 0 &&
                tgt >= next_ckpt_at) {
                // Snapshot only while the member set is intact: once a
                // member has failed, a new snapshot would record a
                // different composition than a clean re-run builds.
                bool intact = true;
                for (std::size_t ci = 0; ci < nc; ++ci)
                    if (members[ci].model == nullptr &&
                        !results[ci][ti].resumed)
                        intact = false;
                if (intact) {
                    ckpt::Writer w;
                    w.beginSection(ckpt::tag::kGang);
                    w.putU32(static_cast<std::uint32_t>(nc));
                    w.putU64(tgt);
                    for (std::size_t ci = 0; ci < nc; ++ci) {
                        std::uint8_t fl = 0;
                        if (members[ci].model != nullptr)
                            fl |= 1u;
                        if (members[ci].done)
                            fl |= 2u;
                        w.putU8(fl);
                    }
                    w.endSection();
                    for (std::size_t ci = 0; ci < nc; ++ci)
                        if (members[ci].model != nullptr)
                            members[ci].model->saveState(w);
                    w.finish();
                    ckpt::saveCkptFile(ckpt_path, w);
                }
                next_ckpt_at = tgt + ckpt_interval;
            }
            prev = tgt;
        }

        for (std::size_t ci = 0; ci < nc; ++ci) {
            GangMember &m = members[ci];
            runner::SimJobResult &out = results[ci][ti];
            if (m.model != nullptr) {
                const auto t0 = SteadyClock::now();
                try {
                    out.result = m.model->finishRun();
                    out.ok = true;
                } catch (const std::exception &e) {
                    fail(ci, e.what());
                }
                m.seconds += std::chrono::duration<double>(
                        SteadyClock::now() - t0).count();
            }
            if (out.resumed)
                continue; // already reported by the resume branch
            out.seconds = m.seconds;
            out.telemetry.collected = true;
            out.telemetry.queueSeconds = queue_s;
            out.telemetry.queueDepth = queue_depth;
            out.telemetry.runSeconds = m.seconds
                    - out.telemetry.loadSeconds;
            runner::SimJob job(configs[ci].name, configs[ci].cfg, &t,
                               seeds[ci]);
            sink.write(runner::jobRecord(job, out));
            meter.jobDone(configs[ci].name + "/" + t.name(),
                          out.seconds);
        }
        if (!ckpt_path.empty())
            ckpt::removeCkptFile(ckpt_path);
        if (tw != nullptr)
            tw->span(obs::TraceWriter::kPidRunner, lane, "gang",
                     std::string("gang:") + t.name(), gang_ts,
                     tw->nowUs() - gang_ts,
                     {{"configs", obs::jsonNum(
                               static_cast<std::uint64_t>(nc))},
                      {"insts", obs::jsonNum(
                               static_cast<std::uint64_t>(n))}});
    });
    return results;
}

} // namespace zbp::sim
