#include "zbp/sim/report.hh"

#include <cstdio>

namespace zbp::sim
{

namespace
{

/** The exported scalar fields, in column order. */
struct Field
{
    const char *name;
    std::uint64_t (*get)(const cpu::SimResult &);
};

constexpr Field kFields[] = {
    {"cycles", [](const cpu::SimResult &r) { return r.cycles; }},
    {"instructions",
     [](const cpu::SimResult &r) { return r.instructions; }},
    {"branches", [](const cpu::SimResult &r) { return r.branches; }},
    {"takenBranches",
     [](const cpu::SimResult &r) { return r.takenBranches; }},
    {"correct", [](const cpu::SimResult &r) { return r.correct; }},
    {"mispredictDir",
     [](const cpu::SimResult &r) { return r.mispredictDir; }},
    {"mispredictTarget",
     [](const cpu::SimResult &r) { return r.mispredictTarget; }},
    {"surpriseCompulsory",
     [](const cpu::SimResult &r) { return r.surpriseCompulsory; }},
    {"surpriseLatency",
     [](const cpu::SimResult &r) { return r.surpriseLatency; }},
    {"surpriseCapacity",
     [](const cpu::SimResult &r) { return r.surpriseCapacity; }},
    {"surpriseBenign",
     [](const cpu::SimResult &r) { return r.surpriseBenign; }},
    {"phantoms", [](const cpu::SimResult &r) { return r.phantoms; }},
    {"icacheMisses",
     [](const cpu::SimResult &r) { return r.icacheMisses; }},
    {"dcacheMisses",
     [](const cpu::SimResult &r) { return r.dcacheMisses; }},
    {"btb1MissReports",
     [](const cpu::SimResult &r) { return r.btb1MissReports; }},
    {"btb2RowReads",
     [](const cpu::SimResult &r) { return r.btb2RowReads; }},
    {"btb2Transfers",
     [](const cpu::SimResult &r) { return r.btb2Transfers; }},
    {"predictionsMade",
     [](const cpu::SimResult &r) { return r.predictionsMade; }},
};

std::string
fmtDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

/** CSV/JSON string escaping for labels (quotes and control chars). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out += c;
    }
    return out;
}

} // namespace

std::string
resultCsvHeader()
{
    std::string out = "label,cpi";
    for (const auto &f : kFields) {
        out += ',';
        out += f.name;
    }
    return out;
}

std::string
resultCsvRow(const std::string &label, const cpu::SimResult &r)
{
    std::string out = '"' + escape(label) + '"';
    out += ',' + fmtDouble(r.cpi);
    for (const auto &f : kFields)
        out += ',' + std::to_string(f.get(r));
    return out;
}

std::string
resultsToCsv(const std::vector<cpu::SimResult> &results)
{
    std::string out = resultCsvHeader() + '\n';
    for (const auto &r : results)
        out += resultCsvRow(r.traceName, r) + '\n';
    return out;
}

std::string
resultToJson(const cpu::SimResult &r)
{
    std::string out = "{\"trace\":\"" + escape(r.traceName) + "\"";
    out += ",\"cpi\":" + fmtDouble(r.cpi);
    for (const auto &f : kFields) {
        out += ",\"";
        out += f.name;
        out += "\":" + std::to_string(f.get(r));
    }
    out += '}';
    return out;
}

std::string
resultsToJson(const std::vector<cpu::SimResult> &results)
{
    std::string out = "[";
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i)
            out += ',';
        out += resultToJson(results[i]);
    }
    out += ']';
    return out;
}

} // namespace zbp::sim
