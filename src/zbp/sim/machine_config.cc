#include "zbp/sim/machine_config.hh"

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>

namespace zbp::sim
{

namespace
{

/** A typed setter for one configuration key. */
struct Key
{
    std::function<bool(core::MachineParams &, const std::string &)> set;
};

bool
parseU32(const std::string &v, std::uint32_t &out)
{
    try {
        std::size_t pos = 0;
        const unsigned long n = std::stoul(v, &pos, 0);
        if (pos != v.size() || n > 0xFFFF'FFFFul)
            return false;
        out = static_cast<std::uint32_t>(n);
        return true;
    } catch (...) {
        return false;
    }
}

bool
parseDouble(const std::string &v, double &out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(v, &pos);
        return pos == v.size();
    } catch (...) {
        return false;
    }
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "true" || v == "1" || v == "yes" || v == "on") {
        out = true;
        return true;
    }
    if (v == "false" || v == "0" || v == "no" || v == "off") {
        out = false;
        return true;
    }
    return false;
}

template <typename T>
Key
u32Key(T core::MachineParams::*section, std::uint32_t T::*field)
{
    return Key{[section, field](core::MachineParams &p,
                                const std::string &v) {
        return parseU32(v, p.*section.*field);
    }};
}

/** setter helper for unsigned fields. */
template <typename T>
Key
unsKey(T core::MachineParams::*section, unsigned T::*field)
{
    return Key{[section, field](core::MachineParams &p,
                                const std::string &v) {
        std::uint32_t tmp;
        if (!parseU32(v, tmp))
            return false;
        p.*section.*field = tmp;
        return true;
    }};
}

template <typename T>
Key
boolSubKey(T core::MachineParams::*section, bool T::*field)
{
    return Key{[section, field](core::MachineParams &p,
                                const std::string &v) {
        return parseBool(v, p.*section.*field);
    }};
}

const std::map<std::string, Key> &
keyTable()
{
    using MP = core::MachineParams;
    static const std::map<std::string, Key> table = {
        // BTB geometries.
        {"btb1.rows", u32Key(&MP::btb1, &btb::BtbConfig::rows)},
        {"btb1.ways", u32Key(&MP::btb1, &btb::BtbConfig::ways)},
        {"btb1.rowBytes", u32Key(&MP::btb1, &btb::BtbConfig::rowBytes)},
        {"btb1.tagBits", unsKey(&MP::btb1, &btb::BtbConfig::tagBits)},
        {"btbp.rows", u32Key(&MP::btbp, &btb::BtbConfig::rows)},
        {"btbp.ways", u32Key(&MP::btbp, &btb::BtbConfig::ways)},
        {"btbp.rowBytes", u32Key(&MP::btbp, &btb::BtbConfig::rowBytes)},
        {"btbp.tagBits", unsKey(&MP::btbp, &btb::BtbConfig::tagBits)},
        {"btb2.rows", u32Key(&MP::btb2, &btb::BtbConfig::rows)},
        {"btb2.ways", u32Key(&MP::btb2, &btb::BtbConfig::ways)},
        {"btb2.rowBytes", u32Key(&MP::btb2, &btb::BtbConfig::rowBytes)},
        {"btb2.tagBits", unsKey(&MP::btb2, &btb::BtbConfig::tagBits)},
        {"btb2Enabled",
         Key{[](MP &p, const std::string &v) {
             return parseBool(v, p.btb2Enabled);
         }}},
        {"dcacheEnabled",
         Key{[](MP &p, const std::string &v) {
             return parseBool(v, p.dcacheEnabled);
         }}},
        {"decodeTimeMissReports",
         Key{[](MP &p, const std::string &v) {
             return parseBool(v, p.decodeTimeMissReports);
         }}},
        {"collectStatsText",
         Key{[](MP &p, const std::string &v) {
             return parseBool(v, p.collectStatsText);
         }}},
        {"phtEntries",
         Key{[](MP &p, const std::string &v) {
             return parseU32(v, p.phtEntries);
         }}},
        {"ctbEntries",
         Key{[](MP &p, const std::string &v) {
             return parseU32(v, p.ctbEntries);
         }}},
        {"surpriseBhtEntries",
         Key{[](MP &p, const std::string &v) {
             return parseU32(v, p.surpriseBhtEntries);
         }}},

        // Search pipeline.
        {"search.missSearchLimit",
         unsKey(&MP::search, &core::SearchParams::missSearchLimit)},
        {"search.maxNotTakenPerRow",
         unsKey(&MP::search, &core::SearchParams::maxNotTakenPerRow)},
        {"search.fitEntries",
         unsKey(&MP::search, &core::SearchParams::fitEntries)},
        {"search.maxQueuedPredictions",
         unsKey(&MP::search, &core::SearchParams::maxQueuedPredictions)},
        {"search.seqBurst",
         unsKey(&MP::search, &core::SearchParams::seqBurst)},

        // BTB2 engine.
        {"engine.numTrackers",
         unsKey(&MP::engine, &preload::Btb2EngineParams::numTrackers)},
        {"engine.partialSectors",
         unsKey(&MP::engine, &preload::Btb2EngineParams::partialSectors)},
        {"engine.startDelay",
         unsKey(&MP::engine, &preload::Btb2EngineParams::startDelay)},
        {"engine.pipeDepth",
         unsKey(&MP::engine, &preload::Btb2EngineParams::pipeDepth)},
        {"engine.rowReadInterval",
         unsKey(&MP::engine,
                &preload::Btb2EngineParams::rowReadInterval)},
        {"engine.maxChainedBlocks",
         unsKey(&MP::engine,
                &preload::Btb2EngineParams::maxChainedBlocks)},
        {"engine.icacheFilter",
         boolSubKey(&MP::engine,
                    &preload::Btb2EngineParams::icacheFilter)},
        {"engine.semiExclusive",
         boolSubKey(&MP::engine,
                    &preload::Btb2EngineParams::semiExclusive)},
        {"engine.multiBlockTransfer",
         boolSubKey(&MP::engine,
                    &preload::Btb2EngineParams::multiBlockTransfer)},

        // Sector order table.
        {"sot.entries", u32Key(&MP::sot, &preload::SotParams::entries)},
        {"sot.ways", u32Key(&MP::sot, &preload::SotParams::ways)},
        {"sot.enabled",
         boolSubKey(&MP::sot, &preload::SotParams::enabled)},

        // Caches.
        {"icache.sizeBytes",
         u32Key(&MP::icache, &cache::ICacheParams::sizeBytes)},
        {"icache.ways", u32Key(&MP::icache, &cache::ICacheParams::ways)},
        {"icache.lineBytes",
         u32Key(&MP::icache, &cache::ICacheParams::lineBytes)},
        {"icache.missLatency",
         u32Key(&MP::icache, &cache::ICacheParams::missLatency)},
        {"icache.missRecordTtl",
         u32Key(&MP::icache, &cache::ICacheParams::missRecordTtl)},
        {"dcache.sizeBytes",
         u32Key(&MP::dcache, &cache::ICacheParams::sizeBytes)},
        {"dcache.ways", u32Key(&MP::dcache, &cache::ICacheParams::ways)},
        {"dcache.lineBytes",
         u32Key(&MP::dcache, &cache::ICacheParams::lineBytes)},
        {"dcache.missLatency",
         u32Key(&MP::dcache, &cache::ICacheParams::missLatency)},

        // Core timing.
        {"cpu.decodeWidth",
         unsKey(&MP::cpu, &core::CpuParams::decodeWidth)},
        {"cpu.fetchBytesPerCycle",
         unsKey(&MP::cpu, &core::CpuParams::fetchBytesPerCycle)},
        {"cpu.fetchToDecode",
         unsKey(&MP::cpu, &core::CpuParams::fetchToDecode)},
        {"cpu.decodeToResolve",
         unsKey(&MP::cpu, &core::CpuParams::decodeToResolve)},
        {"cpu.restartPenalty",
         unsKey(&MP::cpu, &core::CpuParams::restartPenalty)},
        {"cpu.fetchBufferInsts",
         unsKey(&MP::cpu, &core::CpuParams::fetchBufferInsts)},
        {"cpu.installLatencyWindow",
         unsKey(&MP::cpu, &core::CpuParams::installLatencyWindow)},
        {"cpu.dcacheMissExtra",
         unsKey(&MP::cpu, &core::CpuParams::dcacheMissExtra)},
        {"cpu.dataStallProb",
         Key{[](MP &p, const std::string &v) {
             return parseDouble(v, p.cpu.dataStallProb);
         }}},
        {"cpu.dataStallCycles",
         unsKey(&MP::cpu, &core::CpuParams::dataStallCycles)},
    };
    return table;
}

std::string
trim(const std::string &s)
{
    const auto b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    const auto e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

} // namespace

ParseResult
applyConfigText(const std::string &text, core::MachineParams &params)
{
    std::istringstream is(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        line = trim(line);
        if (line.empty())
            continue;

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return {false, "expected 'key = value': " + line, lineno};
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        const auto it = keyTable().find(key);
        if (it == keyTable().end())
            return {false, "unknown key '" + key + "'", lineno};
        if (!it->second.set(params, value))
            return {false,
                    "bad value '" + value + "' for key '" + key + "'",
                    lineno};
    }
    return {};
}

ParseResult
applyConfigFile(const std::string &path, core::MachineParams &params)
{
    std::ifstream is(path);
    if (!is)
        return {false, "cannot open '" + path + "'", 0};
    std::ostringstream buf;
    buf << is.rdbuf();
    return applyConfigText(buf.str(), params);
}

std::string
configKeyList()
{
    std::string out;
    for (const auto &[key, _] : keyTable()) {
        out += key;
        out += '\n';
    }
    return out;
}

} // namespace zbp::sim
