/**
 * @file
 * High-level experiment driver: run (config x trace) combinations and
 * compute the paper's derived metrics (CPI improvement, BTB2
 * effectiveness).  Every bench binary is a thin wrapper over this.
 *
 * All batch entry points shard their independent simulations across
 * worker threads via zbp::runner (ZBP_JOBS / setJobs()); results are
 * bit-identical to a serial run and each simulation emits one JSONL
 * record when ZBP_RESULTS_JSONL is set.
 */

#ifndef ZBP_SIM_SIMULATOR_HH
#define ZBP_SIM_SIMULATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "zbp/cpu/core_model.hh"
#include "zbp/sim/configs.hh"
#include "zbp/workload/suites.hh"

namespace zbp::sim
{

/** One trace evaluated under the three Table 3 configurations. */
struct Fig2Row
{
    std::string trace;
    cpu::SimResult base;      ///< config 1: no BTB2
    cpu::SimResult withBtb2;  ///< config 2
    cpu::SimResult largeBtb1; ///< config 3

    /** % CPI improvement of config 2 over config 1. */
    double btb2Improvement() const;
    /** % CPI improvement of config 3 over config 1. */
    double largeBtb1Improvement() const;
    /** BTB2 effectiveness: improvement(2) / improvement(3), in %. */
    double effectiveness() const;
};

/** Run one configuration over one trace (in the calling thread). */
cpu::SimResult runOne(const core::MachineParams &cfg,
                      const trace::Trace &t);

/** Run the full Figure 2 comparison for one trace (no trace copy). */
Fig2Row runFig2Row(const trace::Trace &t);

/**
 * Run the Figure 2 comparison for every trace, sharding across worker
 * threads (@p jobs 0 = ZBP_JOBS / auto).  Row order matches @p traces.
 *
 * Default execution is the fused path: the 3 configurations run as one
 * gang per trace in chunk-interleaved order (see GangRunner), sharing
 * the trace bytes and one TraceIndex per trace.  ZBP_FUSE=0 falls back
 * to independent job-per-(config, trace) execution; both paths produce
 * bit-identical results and JSONL records.
 */
std::vector<Fig2Row>
runFig2Rows(const std::vector<trace::TraceHandle> &traces,
            unsigned jobs = 0);

/** By-reference convenience overload (traces are borrowed, not
 * copied; they must outlive the call). */
std::vector<Fig2Row> runFig2Rows(const std::vector<trace::Trace> &traces,
                                 unsigned jobs = 0);

/** False when ZBP_FUSE=0 disables gang-chunked sweep fusion. */
bool fuseFromEnv();

/**
 * Loads the 13 paper suites once (through the workload trace cache,
 * shared in-process via TraceHandles — never deep-copied) and amortizes
 * the config-1 baseline runs across parameter sweeps (Figures 5-7).
 * Loading and every batch of simulations run sharded across worker
 * threads.
 */
class SuiteRunner
{
  public:
    /** @p scale multiplies each suite's nominal instruction count. */
    explicit SuiteRunner(double scale);

    const std::vector<trace::TraceHandle> &traces() const { return tr; }

    /** Worker threads for subsequent batches (0 = ZBP_JOBS / auto). */
    void setJobs(unsigned n) { jobs = n; }

    /** Baseline (config 1) results, computed on first use. */
    const std::vector<cpu::SimResult> &baseline();

    /** Per-trace % CPI improvement of @p cfg over the baseline.  A
     * failed simulation contributes 0.0 and a warning. */
    std::vector<double> improvements(const core::MachineParams &cfg);

    /** Mean of improvements() — the y-axis of Figures 5/6/7. */
    double averageImprovement(const core::MachineParams &cfg);

    /**
     * Fused sweep: run every config of @p cfgs — plus the baseline if
     * it is not yet computed — as ONE gang over the suite traces;
     * result [k] is improvements(cfgs[k]).  Emits the same per-
     * (config, trace) JSONL records as the incremental path (config
     * names "baseline" / describe(cfg)).  ZBP_FUSE=0 falls back to
     * calling improvements() per config; results are bit-identical.
     */
    std::vector<std::vector<double>>
    sweepImprovements(const std::vector<core::MachineParams> &cfgs);

    /** Mean of each sweepImprovements() row. */
    std::vector<double>
    averageImprovements(const std::vector<core::MachineParams> &cfgs);

    /** Optional progress callback (called once per completed
     * simulation, from the completing worker, serialised). */
    void setProgress(std::function<void(const std::string &)> cb);

  private:
    std::vector<cpu::SimResult> runBatch(const core::MachineParams &cfg,
                                         const std::string &cfg_name);

    std::vector<trace::TraceHandle> tr;
    std::vector<cpu::SimResult> base;
    std::function<void(const std::string &)> progress;
    unsigned jobs = 0;
};

} // namespace zbp::sim

#endif // ZBP_SIM_SIMULATOR_HH
