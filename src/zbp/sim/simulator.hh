/**
 * @file
 * High-level experiment driver: run (config x trace) combinations and
 * compute the paper's derived metrics (CPI improvement, BTB2
 * effectiveness).  Every bench binary is a thin wrapper over this.
 */

#ifndef ZBP_SIM_SIMULATOR_HH
#define ZBP_SIM_SIMULATOR_HH

#include <functional>
#include <string>
#include <vector>

#include "zbp/cpu/core_model.hh"
#include "zbp/sim/configs.hh"
#include "zbp/workload/suites.hh"

namespace zbp::sim
{

/** One trace evaluated under the three Table 3 configurations. */
struct Fig2Row
{
    std::string trace;
    cpu::SimResult base;      ///< config 1: no BTB2
    cpu::SimResult withBtb2;  ///< config 2
    cpu::SimResult largeBtb1; ///< config 3

    /** % CPI improvement of config 2 over config 1. */
    double btb2Improvement() const;
    /** % CPI improvement of config 3 over config 1. */
    double largeBtb1Improvement() const;
    /** BTB2 effectiveness: improvement(2) / improvement(3), in %. */
    double effectiveness() const;
};

/** Run one configuration over one trace. */
cpu::SimResult runOne(const core::MachineParams &cfg,
                      const trace::Trace &t);

/** Run the full Figure 2 comparison for one trace. */
Fig2Row runFig2Row(const trace::Trace &t);

/**
 * Generates the 13 paper suites once and amortizes the config-1
 * baseline runs across parameter sweeps (Figures 5-7).
 */
class SuiteRunner
{
  public:
    /** @p scale multiplies each suite's nominal instruction count. */
    explicit SuiteRunner(double scale);

    const std::vector<trace::Trace> &traces() const { return tr; }

    /** Baseline (config 1) results, computed on first use. */
    const std::vector<cpu::SimResult> &baseline();

    /** Per-trace % CPI improvement of @p cfg over the baseline. */
    std::vector<double> improvements(const core::MachineParams &cfg);

    /** Mean of improvements() — the y-axis of Figures 5/6/7. */
    double averageImprovement(const core::MachineParams &cfg);

    /** Optional progress callback (called once per simulation run). */
    void setProgress(std::function<void(const std::string &)> cb);

  private:
    std::vector<trace::Trace> tr;
    std::vector<cpu::SimResult> base;
    std::function<void(const std::string &)> progress;
};

} // namespace zbp::sim

#endif // ZBP_SIM_SIMULATOR_HH
