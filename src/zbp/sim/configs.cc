#include "zbp/sim/configs.hh"

#include <cstdio>

namespace zbp::sim
{

core::MachineParams
configNoBtb2()
{
    core::MachineParams p;
    p.btb2Enabled = false;
    return p;
}

core::MachineParams
configBtb2()
{
    return core::MachineParams{}; // defaults are Table 3 row 2
}

core::MachineParams
configLargeBtb1()
{
    core::MachineParams p;
    p.btb2Enabled = false;
    p.btb1.rows = 4096;
    p.btb1.ways = 6; // 24k branches at BTB1 latency
    return p;
}

core::MachineParams
configBtb2Sized(std::uint32_t rows, std::uint32_t ways)
{
    core::MachineParams p;
    p.btb2.rows = rows;
    p.btb2.ways = ways;
    return p;
}

core::MachineParams
configMissLimit(unsigned searches)
{
    core::MachineParams p;
    p.search.missSearchLimit = searches;
    return p;
}

core::MachineParams
configTrackers(unsigned n)
{
    core::MachineParams p;
    p.engine.numTrackers = n;
    return p;
}

std::string
describe(const core::MachineParams &p)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "BTB1 %uk (%u x %u), BTBP %u (%u x %u), BTB2 %s",
                  p.btb1.rows * p.btb1.ways / 1024, p.btb1.rows,
                  p.btb1.ways, p.btbp.rows * p.btbp.ways, p.btbp.rows,
                  p.btbp.ways, p.btb2Enabled ? "" : "disabled");
    std::string s(buf);
    if (p.btb2Enabled) {
        std::snprintf(buf, sizeof(buf), "%uk (%u x %u), %u trackers",
                      p.btb2.rows * p.btb2.ways / 1024, p.btb2.rows,
                      p.btb2.ways, p.engine.numTrackers);
        s += buf;
    }
    return s;
}

} // namespace zbp::sim
