#include "zbp/sim/simulator.hh"

#include <cstdlib>
#include <cstring>

#include "zbp/common/log.hh"
#include "zbp/runner/executor.hh"
#include "zbp/runner/job_runner.hh"
#include "zbp/sim/gang_runner.hh"

namespace zbp::sim
{

namespace
{

/** Adapt a string progress callback to the runner's event callback. */
runner::ProgressMeter::Callback
adaptProgress(const std::function<void(const std::string &)> &cb)
{
    if (!cb)
        return {};
    return [cb](const runner::ProgressMeter::Event &e) { cb(e.label); };
}

/** Unpack a batch, warning about (and zero-filling) failed jobs. */
std::vector<cpu::SimResult>
unpack(const std::vector<runner::SimJob> &jobs,
       std::vector<runner::SimJobResult> &&raw)
{
    std::vector<cpu::SimResult> out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (!raw[i].ok) {
            warn("simulation '", jobs[i].configName, "' on '",
                 jobs[i].trace->name(), "' failed: ", raw[i].error);
            cpu::SimResult empty;
            empty.traceName = jobs[i].trace->name();
            out.push_back(std::move(empty));
        } else {
            out.push_back(std::move(raw[i].result));
        }
    }
    return out;
}

/** Unpack one gang config's per-trace results, warning about (and
 * zero-filling) failed cells. */
std::vector<cpu::SimResult>
unpackGang(const std::string &cfg_name,
           const std::vector<trace::TraceHandle> &traces,
           std::vector<runner::SimJobResult> &&raw)
{
    std::vector<cpu::SimResult> out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
        if (!raw[i].ok) {
            warn("simulation '", cfg_name, "' on '", traces[i]->name(),
                 "' failed: ", raw[i].error);
            cpu::SimResult empty;
            empty.traceName = traces[i]->name();
            out.push_back(std::move(empty));
        } else {
            out.push_back(std::move(raw[i].result));
        }
    }
    return out;
}

} // namespace

bool
fuseFromEnv()
{
    const char *s = std::getenv("ZBP_FUSE");
    return s == nullptr || std::strcmp(s, "0") != 0;
}

double
Fig2Row::btb2Improvement() const
{
    return cpu::cpiImprovement(base, withBtb2);
}

double
Fig2Row::largeBtb1Improvement() const
{
    return cpu::cpiImprovement(base, largeBtb1);
}

double
Fig2Row::effectiveness() const
{
    const double big = largeBtb1Improvement();
    if (big <= 0.0)
        return 0.0;
    return btb2Improvement() / big * 100.0;
}

cpu::SimResult
runOne(const core::MachineParams &cfg, const trace::Trace &t)
{
    cpu::CoreModel model(cfg);
    return model.run(t);
}

Fig2Row
runFig2Row(const trace::Trace &t)
{
    std::vector<trace::TraceHandle> one;
    one.push_back(trace::borrowTrace(t));
    return runFig2Rows(one).front();
}

std::vector<Fig2Row>
runFig2Rows(const std::vector<trace::TraceHandle> &traces, unsigned jobs)
{
    struct Cfg
    {
        const char *name;
        core::MachineParams params;
    };
    Cfg cfgs[] = {
        {"no-btb2", configNoBtb2()},
        {"btb2", configBtb2()},
        {"large-btb1", configLargeBtb1()},
    };
    // Sweep path: counters only, no per-run stats-text formatting.
    for (auto &c : cfgs)
        c.params.collectStatsText = false;

    const std::size_t n = traces.size();
    std::vector<Fig2Row> rows(n);

    if (fuseFromEnv()) {
        // Fused path: the 3 configs run as one gang per trace, chunk-
        // interleaved over shared trace bytes (bit-identical to the
        // legacy path below — the golden-counter tests pin it).
        std::vector<GangConfig> gang;
        for (const auto &c : cfgs)
            gang.push_back({c.name, c.params});
        GangRunner gr(std::move(gang), jobs);
        gr.setProgress(runner::consoleProgress());
        auto res = gr.run(traces);
        std::vector<std::vector<cpu::SimResult>> per_cfg;
        for (std::size_t ci = 0; ci < 3; ++ci)
            per_cfg.push_back(unpackGang(cfgs[ci].name, traces,
                                         std::move(res[ci])));
        for (std::size_t i = 0; i < n; ++i) {
            rows[i].trace = traces[i]->name();
            rows[i].base = std::move(per_cfg[0][i]);
            rows[i].withBtb2 = std::move(per_cfg[1][i]);
            rows[i].largeBtb1 = std::move(per_cfg[2][i]);
        }
        return rows;
    }

    // Legacy path (ZBP_FUSE=0): 3 N independent jobs, grouped
    // [config1 x N][config2 x N][...] so result i maps back to
    // (i / N, i % N).
    std::vector<runner::SimJob> batch;
    batch.reserve(3 * n);
    for (const auto &c : cfgs)
        for (const auto &t : traces)
            batch.push_back({c.name, c.params, t.get()});

    runner::JobRunner jr(jobs);
    jr.setProgress(runner::consoleProgress()); // tty-only status line
    auto raw = jr.run(batch);
    auto results = unpack(batch, std::move(raw));

    for (std::size_t i = 0; i < n; ++i) {
        rows[i].trace = traces[i]->name();
        rows[i].base = std::move(results[i]);
        rows[i].withBtb2 = std::move(results[n + i]);
        rows[i].largeBtb1 = std::move(results[2 * n + i]);
    }
    return rows;
}

std::vector<Fig2Row>
runFig2Rows(const std::vector<trace::Trace> &traces, unsigned jobs)
{
    std::vector<trace::TraceHandle> handles;
    handles.reserve(traces.size());
    for (const auto &t : traces)
        handles.push_back(trace::borrowTrace(t));
    return runFig2Rows(handles, jobs);
}

SuiteRunner::SuiteRunner(double scale)
{
    const auto &specs = workload::paperSuites();
    tr.resize(specs.size());
    // Suite loading is seeded per spec (and cache-keyed on the recipe),
    // so sharding it is as deterministic as the simulations themselves.
    runner::ParallelExecutor exec;
    const auto failures = exec.run(specs.size(), [&](std::size_t i) {
        tr[i] = workload::suiteTraceHandle(specs[i], scale);
    });
    for (const auto &f : failures)
        panic("suite '", specs[f.index].name, "' failed to load: ",
              f.message);
}

std::vector<cpu::SimResult>
SuiteRunner::runBatch(const core::MachineParams &cfg,
                      const std::string &cfg_name)
{
    core::MachineParams sweep_cfg = cfg;
    sweep_cfg.collectStatsText = false; // counters only in sweeps
    std::vector<runner::SimJob> batch;
    batch.reserve(tr.size());
    for (const auto &t : tr)
        batch.push_back({cfg_name, sweep_cfg, t.get()});
    runner::JobRunner jr(jobs);
    jr.setProgress(adaptProgress(progress));
    return unpack(batch, jr.run(batch));
}

std::vector<std::vector<double>>
SuiteRunner::sweepImprovements(const std::vector<core::MachineParams> &cfgs)
{
    std::vector<std::vector<double>> out;
    out.reserve(cfgs.size());

    if (!fuseFromEnv()) {
        for (const auto &c : cfgs)
            out.push_back(improvements(c));
        return out;
    }

    // One gang: [baseline if missing] + every sweep point.  Config
    // names match the incremental path so JSONL records and resume keys
    // are interchangeable between the two.
    std::vector<GangConfig> gang;
    const bool need_base = base.empty();
    if (need_base) {
        core::MachineParams b = configNoBtb2();
        b.collectStatsText = false;
        gang.push_back({"baseline", std::move(b)});
    }
    for (const auto &c : cfgs) {
        core::MachineParams s = c;
        s.collectStatsText = false;
        gang.push_back({describe(c), std::move(s)});
    }

    GangRunner gr(std::move(gang), jobs);
    gr.setProgress(adaptProgress(progress));
    auto res = gr.run(tr);

    std::size_t at = 0;
    if (need_base)
        base = unpackGang("baseline", tr, std::move(res[at++]));
    for (const auto &c : cfgs) {
        const auto results =
                unpackGang(describe(c), tr, std::move(res[at++]));
        std::vector<double> imp;
        imp.reserve(tr.size());
        for (std::size_t i = 0; i < tr.size(); ++i)
            imp.push_back(cpu::cpiImprovement(base[i], results[i]));
        out.push_back(std::move(imp));
    }
    return out;
}

std::vector<double>
SuiteRunner::averageImprovements(const std::vector<core::MachineParams> &cfgs)
{
    const auto rows = sweepImprovements(cfgs);
    std::vector<double> means;
    means.reserve(rows.size());
    for (const auto &imps : rows) {
        double sum = 0.0;
        for (double v : imps)
            sum += v;
        means.push_back(imps.empty()
                                ? 0.0
                                : sum / static_cast<double>(imps.size()));
    }
    return means;
}

const std::vector<cpu::SimResult> &
SuiteRunner::baseline()
{
    if (base.empty())
        base = runBatch(configNoBtb2(), "baseline");
    return base;
}

std::vector<double>
SuiteRunner::improvements(const core::MachineParams &cfg)
{
    const auto &b = baseline();
    const auto results = runBatch(cfg, describe(cfg));
    std::vector<double> out;
    out.reserve(tr.size());
    for (std::size_t i = 0; i < tr.size(); ++i)
        out.push_back(cpu::cpiImprovement(b[i], results[i]));
    return out;
}

double
SuiteRunner::averageImprovement(const core::MachineParams &cfg)
{
    const auto imps = improvements(cfg);
    double sum = 0.0;
    for (double v : imps)
        sum += v;
    return imps.empty() ? 0.0 : sum / static_cast<double>(imps.size());
}

void
SuiteRunner::setProgress(std::function<void(const std::string &)> cb)
{
    progress = std::move(cb);
}

} // namespace zbp::sim
