#include "zbp/sim/simulator.hh"

namespace zbp::sim
{

double
Fig2Row::btb2Improvement() const
{
    return cpu::cpiImprovement(base, withBtb2);
}

double
Fig2Row::largeBtb1Improvement() const
{
    return cpu::cpiImprovement(base, largeBtb1);
}

double
Fig2Row::effectiveness() const
{
    const double big = largeBtb1Improvement();
    if (big <= 0.0)
        return 0.0;
    return btb2Improvement() / big * 100.0;
}

cpu::SimResult
runOne(const core::MachineParams &cfg, const trace::Trace &t)
{
    cpu::CoreModel model(cfg);
    return model.run(t);
}

Fig2Row
runFig2Row(const trace::Trace &t)
{
    Fig2Row row;
    row.trace = t.name();
    row.base = runOne(configNoBtb2(), t);
    row.withBtb2 = runOne(configBtb2(), t);
    row.largeBtb1 = runOne(configLargeBtb1(), t);
    return row;
}

SuiteRunner::SuiteRunner(double scale)
{
    tr.reserve(workload::paperSuites().size());
    for (const auto &spec : workload::paperSuites())
        tr.push_back(workload::makeSuiteTrace(spec, scale));
}

const std::vector<cpu::SimResult> &
SuiteRunner::baseline()
{
    if (base.empty()) {
        const auto cfg = configNoBtb2();
        base.reserve(tr.size());
        for (const auto &t : tr) {
            if (progress)
                progress("baseline " + t.name());
            base.push_back(runOne(cfg, t));
        }
    }
    return base;
}

std::vector<double>
SuiteRunner::improvements(const core::MachineParams &cfg)
{
    const auto &b = baseline();
    std::vector<double> out;
    out.reserve(tr.size());
    for (std::size_t i = 0; i < tr.size(); ++i) {
        if (progress)
            progress(tr[i].name());
        const auto r = runOne(cfg, tr[i]);
        out.push_back(cpu::cpiImprovement(b[i], r));
    }
    return out;
}

double
SuiteRunner::averageImprovement(const core::MachineParams &cfg)
{
    const auto imps = improvements(cfg);
    double sum = 0.0;
    for (double v : imps)
        sum += v;
    return imps.empty() ? 0.0 : sum / static_cast<double>(imps.size());
}

void
SuiteRunner::setProgress(std::function<void(const std::string &)> cb)
{
    progress = std::move(cb);
}

} // namespace zbp::sim
