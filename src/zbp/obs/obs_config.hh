/**
 * @file
 * Observability configuration and the process-wide writer singletons.
 *
 * Environment contract (all off by default — when every ZBP_OBS_* var
 * is unset, no obs object is ever constructed and the simulation runs
 * bit-identically to a build without this subsystem):
 *
 *  - ZBP_OBS_INTERVAL=N    sample registered counters every N decoded
 *                          instructions per core (N >= 1)
 *  - ZBP_OBS_OUT=path      interval sidecar path; ".csv" suffix selects
 *                          CSV, anything else JSONL.  Defaults to
 *                          "obs_intervals.jsonl" when ZBP_OBS_INTERVAL
 *                          is set without it.
 *  - ZBP_OBS_TRACE=path    Chrome trace-event / Perfetto JSON timeline
 *  - ZBP_OBS_TRACE_MAX=N   event cap for the timeline (default 1M)
 *
 * The writers are lazily constructed singletons: many runners
 * (JobRunner, GangRunner, CmpRunner) coexist in one process and must
 * share one sidecar / one timeline file.  They are torn down by a
 * static destructor at normal process exit, which writes the trace
 * footer; call obsShutdown() earlier to validate files mid-process.
 */

#ifndef ZBP_OBS_OBS_CONFIG_HH
#define ZBP_OBS_OBS_CONFIG_HH

#include <cstdint>
#include <string>

#include "zbp/obs/interval_sampler.hh"
#include "zbp/obs/trace_writer.hh"

namespace zbp::obs
{

struct ObsConfig
{
    std::uint64_t intervalInsts = 0; ///< 0 = sampling off
    std::string intervalPath;
    std::string tracePath;           ///< empty = tracing off
    std::uint64_t traceMaxEvents = 1'000'000;

    bool samplingEnabled() const { return intervalInsts > 0; }
    bool tracingEnabled() const { return !tracePath.empty(); }
};

/** Parse the ZBP_OBS_* environment (warning once per bad value). */
ObsConfig obsConfigFromEnv();

/** The process-wide timeline writer, or nullptr when ZBP_OBS_TRACE is
 * unset.  Constructed on first call, closed at process exit. */
TraceWriter *globalTraceWriter();

/** The process-wide interval sidecar, or nullptr when ZBP_OBS_INTERVAL
 * is unset. */
IntervalWriter *globalIntervalWriter();

/** ZBP_OBS_INTERVAL as parsed for the global writers (0 = off). */
std::uint64_t globalIntervalInsts();

/** Close both global writers (idempotent); files become valid/complete
 * at this point instead of at process exit. */
void obsShutdown();

/** Flush both global writers without closing them.  Runners call this
 * when a job fails or a watchdog fires, so observability collected up
 * to the failure survives even if the process dies right after. */
void obsFlush();

} // namespace zbp::obs

#endif // ZBP_OBS_OBS_CONFIG_HH
