#include "zbp/obs/obs_config.hh"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "zbp/common/log.hh"

namespace zbp::obs
{

namespace
{

std::uint64_t
u64FromEnv(const char *var, std::uint64_t dflt)
{
    const char *s = std::getenv(var);
    if (s == nullptr || *s == '\0')
        return dflt;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || v < 1) {
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true))
            warn("ignoring bad ", var, " '", s, "'");
        return dflt;
    }
    return v;
}

std::string
strFromEnv(const char *var)
{
    const char *s = std::getenv(var);
    return s == nullptr ? std::string() : std::string(s);
}

/** Owns the global writers so one static destructor closes both (the
 * trace footer lands on normal exit). */
struct GlobalObs
{
    ObsConfig cfg;
    std::unique_ptr<TraceWriter> tracer;
    std::unique_ptr<IntervalWriter> intervals;

    GlobalObs()
    {
        cfg = obsConfigFromEnv();
        if (cfg.tracingEnabled())
            tracer = std::make_unique<TraceWriter>(cfg.tracePath,
                                                   cfg.traceMaxEvents);
        if (cfg.samplingEnabled())
            intervals = std::make_unique<IntervalWriter>(cfg.intervalPath);
    }
};

GlobalObs &
instance()
{
    static GlobalObs g;
    return g;
}

} // namespace

ObsConfig
obsConfigFromEnv()
{
    ObsConfig c;
    c.intervalInsts = u64FromEnv("ZBP_OBS_INTERVAL", 0);
    c.intervalPath = strFromEnv("ZBP_OBS_OUT");
    if (c.intervalInsts > 0 && c.intervalPath.empty())
        c.intervalPath = "obs_intervals.jsonl";
    c.tracePath = strFromEnv("ZBP_OBS_TRACE");
    c.traceMaxEvents = u64FromEnv("ZBP_OBS_TRACE_MAX", 1'000'000);
    return c;
}

TraceWriter *
globalTraceWriter()
{
    return instance().tracer.get();
}

IntervalWriter *
globalIntervalWriter()
{
    return instance().intervals.get();
}

std::uint64_t
globalIntervalInsts()
{
    return instance().cfg.intervalInsts;
}

void
obsShutdown()
{
    GlobalObs &g = instance();
    if (g.tracer)
        g.tracer->close();
    if (g.intervals)
        g.intervals->close();
}

void
obsFlush()
{
    GlobalObs &g = instance();
    if (g.tracer)
        g.tracer->flush();
    if (g.intervals)
        g.intervals->flush();
}

} // namespace zbp::obs
