/**
 * @file
 * Interval time-series metrics: IntervalSampler snapshots a set of
 * registered counter probes every N decoded instructions and emits the
 * *deltas* per interval through an IntervalWriter sidecar (CSV or
 * JSONL), so per-interval CPI / hit-rate curves can be plotted and the
 * column sums reproduce the end-of-run aggregates exactly.
 *
 * Zero-overhead contract (same as zbp::fault): a core holds a plain
 * `IntervalSampler *` that is null unless ZBP_OBS_INTERVAL is set; the
 * hot-path hook is one null test plus one integer compare
 * (`decodeIdx >= smp->nextAt()`).  Probes are read-only lambdas over
 * existing counters, so sampling never perturbs simulation state —
 * golden counters stay bit-identical even with sampling ON.
 *
 * Rows are delta-encoded into a small ring that drains to the writer in
 * batches, keeping mid-run I/O off the per-instruction path.
 */

#ifndef ZBP_OBS_INTERVAL_SAMPLER_HH
#define ZBP_OBS_INTERVAL_SAMPLER_HH

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace zbp::obs
{

/** One sampled interval: deltas since the previous sample. */
struct IntervalRow
{
    std::uint64_t interval = 0; ///< 0-based interval index
    std::uint64_t instEnd = 0;  ///< cumulative decoded insts at sample
    std::uint64_t insts = 0;    ///< instructions in this interval
    std::vector<std::uint64_t> deltas; ///< parallel to the probe list
};

/**
 * Sink for interval rows: CSV when the path ends in ".csv", JSONL
 * otherwise.  Thread-safe; shared by every sampler in the process (one
 * sidecar per run, many cores/jobs).  The first batch fixes the CSV
 * column set; later batches must present the identical probe list
 * (samplers register the canonical probe set, so this holds by
 * construction — a mismatch is a programming error and fatal()s).
 */
class IntervalWriter
{
  public:
    explicit IntervalWriter(const std::string &path);
    ~IntervalWriter();

    IntervalWriter(const IntervalWriter &) = delete;
    IntervalWriter &operator=(const IntervalWriter &) = delete;

    void close(); ///< flush + close; idempotent

    /** fflush() the open file without closing it: rows written so far
     * survive an abnormal exit (crash, SIGKILL) of the process. */
    void flush();

    /** Append @p rows for one (trace, config, core) identity. */
    void writeBatch(const std::string &trace, const std::string &config,
                    unsigned core, const std::vector<const char *> &probes,
                    const std::vector<IntervalRow> &rows);

    const std::string &path() const { return filePath; }
    std::uint64_t rowsWritten() const;

  private:
    std::string filePath;
    std::FILE *f = nullptr;
    bool csv = false;
    bool headerDone = false;
    std::vector<std::string> headerProbes; ///< CSV column contract
    std::uint64_t nRows = 0;
    mutable std::mutex mu;
};

/**
 * Per-core delta sampler.  Lifecycle mirrors a CoreModel run:
 * register probes once, then beginRun() → sample() whenever the decode
 * count crosses an interval boundary → finish() for the final partial
 * interval and the flush to the writer.
 */
class IntervalSampler
{
  public:
    /** @p interval_insts must be >= 1. */
    IntervalSampler(IntervalWriter *writer, std::uint64_t interval_insts);

    IntervalSampler(const IntervalSampler &) = delete;
    IntervalSampler &operator=(const IntervalSampler &) = delete;

    void
    setIdentity(std::string trace, std::string config, unsigned core)
    {
        traceId = std::move(trace);
        configName = std::move(config);
        coreId = core;
    }

    /** Register a probe; @p name must outlive the sampler (string
     * literal).  Call before beginRun(). */
    void addProbe(const char *name, std::function<std::uint64_t()> fn);

    /** Capture the baseline (probe values at run start). */
    void beginRun();

    /** Decode count at which the next sample is due — the hot-path
     * compare: `if (decodeIdx >= smp->nextAt()) smp->sample(decodeIdx)`. */
    std::uint64_t nextAt() const { return nextSampleAt; }

    /** Close the current interval at @p inst_count decoded insts. */
    void sample(std::uint64_t inst_count);

    /** Emit the final partial interval (if any instructions are
     * pending) and drain the ring to the writer. */
    void finish(std::uint64_t inst_count);

    std::uint64_t intervalInsts() const { return step; }
    const std::vector<const char *> &probeNames() const { return names; }

  private:
    void record(std::uint64_t inst_count);
    void flush();

    IntervalWriter *out;
    std::uint64_t step;
    std::string traceId;
    std::string configName;
    unsigned coreId = 0;

    std::vector<const char *> names;
    std::vector<std::function<std::uint64_t()>> probes;
    std::vector<std::uint64_t> prev; ///< probe values at last sample

    std::uint64_t prevInst = 0;
    std::uint64_t nextSampleAt = 0;
    std::uint64_t nIntervals = 0;
    std::vector<IntervalRow> ring; ///< drains to `out` in batches
};

} // namespace zbp::obs

#endif // ZBP_OBS_INTERVAL_SAMPLER_HH
