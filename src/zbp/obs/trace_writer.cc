#include "zbp/obs/trace_writer.hh"

#include <cinttypes>
#include <cmath>

#include "zbp/common/log.hh"

namespace zbp::obs
{

namespace
{

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned char>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Timestamps render as plain decimals (no exponent — some trace-event
 * consumers reject 1e+06 in ts/dur). */
std::string
decimal(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

} // namespace

std::string
jsonNum(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

std::string
jsonStr(const std::string &s)
{
    std::string out = "\"";
    out += escape(s);
    out += '"';
    return out;
}

TraceWriter::TraceWriter(const std::string &path, std::uint64_t max_events)
    : filePath(path), epoch(std::chrono::steady_clock::now()),
      maxEvents(max_events)
{
    f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot create trace file '", path, "'");
    std::fputs("{\"traceEvents\":[\n", f);
    // Process metadata names the two tracks; sort indexes pin the
    // orchestration track above the microarchitecture one.
    std::lock_guard<std::mutex> lk(mu);
    emitLocked("{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"name\":\"process_name\","
               "\"args\":{\"name\":\"runner orchestration\"}}");
    emitLocked("{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
               "\"name\":\"process_sort_index\",\"args\":{\"sort_index\":0}}");
    emitLocked("{\"ph\":\"M\",\"pid\":2,\"tid\":0,"
               "\"name\":\"process_name\","
               "\"args\":{\"name\":\"microarchitecture (ts = cycles)\"}}");
    emitLocked("{\"ph\":\"M\",\"pid\":2,\"tid\":0,"
               "\"name\":\"process_sort_index\",\"args\":{\"sort_index\":1}}");
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::close()
{
    std::lock_guard<std::mutex> lk(mu);
    if (closed || f == nullptr)
        return;
    // A final metadata record makes truncation visible in the file
    // itself (and doubles as the list's last element — no trailing
    // comma bookkeeping needed elsewhere).
    std::fprintf(f,
                 "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                 "\"name\":\"zbp_obs_summary\",\"args\":{\"events\":%" PRIu64
                 ",\"dropped\":%" PRIu64 "}}\n]}\n",
                 nEvents, nDropped);
    std::fclose(f);
    f = nullptr;
    closed = true;
}

void
TraceWriter::flush()
{
    std::lock_guard<std::mutex> lk(mu);
    if (!closed && f != nullptr)
        std::fflush(f);
}

std::uint32_t
TraceWriter::newLane(std::uint32_t pid, const std::string &name)
{
    std::uint32_t tid;
    {
        std::lock_guard<std::mutex> lk(mu);
        tid = nextTid++;
    }
    std::string ev = "{\"ph\":\"M\",\"pid\":" + jsonNum(std::uint64_t{pid}) +
                     ",\"tid\":" + jsonNum(std::uint64_t{tid}) +
                     ",\"name\":\"thread_name\",\"args\":{\"name\":" +
                     jsonStr(name) + "}}";
    emit(ev);
    return tid;
}

double
TraceWriter::nowUs() const
{
    return std::chrono::duration<double, std::micro>(
                   std::chrono::steady_clock::now() - epoch)
            .count();
}

std::string
TraceWriter::header(std::uint32_t pid, std::uint32_t tid, const char *ph,
                    const char *cat, const std::string &name,
                    double ts) const
{
    return std::string("{\"ph\":\"") + ph + "\",\"pid\":" +
           jsonNum(std::uint64_t{pid}) + ",\"tid\":" +
           jsonNum(std::uint64_t{tid}) + ",\"cat\":\"" + cat +
           "\",\"name\":" + jsonStr(name) + ",\"ts\":" + decimal(ts);
}

void
TraceWriter::appendArgs(std::string &ev, const TraceArgs &args)
{
    if (args.empty())
        return;
    ev += ",\"args\":{";
    bool first = true;
    for (const auto &[k, v] : args) {
        if (!first)
            ev += ',';
        first = false;
        ev += '"';
        ev += k; // keys are compile-time literals, never need escaping
        ev += "\":";
        ev += v;
    }
    ev += '}';
}

void
TraceWriter::span(std::uint32_t pid, std::uint32_t tid, const char *cat,
                  const std::string &name, double ts, double dur,
                  const TraceArgs &args)
{
    std::string ev = header(pid, tid, "X", cat, name, ts);
    ev += ",\"dur\":" + decimal(dur);
    appendArgs(ev, args);
    ev += '}';
    emit(ev);
}

void
TraceWriter::instant(std::uint32_t pid, std::uint32_t tid, const char *cat,
                     const std::string &name, double ts,
                     const TraceArgs &args)
{
    std::string ev = header(pid, tid, "i", cat, name, ts);
    ev += ",\"s\":\"t\"";
    appendArgs(ev, args);
    ev += '}';
    emit(ev);
}

void
TraceWriter::emit(const std::string &event_json)
{
    std::lock_guard<std::mutex> lk(mu);
    emitLocked(event_json);
}

void
TraceWriter::emitLocked(const std::string &event_json)
{
    if (closed || f == nullptr)
        return;
    if (nEvents >= maxEvents) {
        ++nDropped;
        return;
    }
    std::fputs(event_json.c_str(), f);
    std::fputs(",\n", f);
    ++nEvents;
}

std::uint64_t
TraceWriter::events() const
{
    std::lock_guard<std::mutex> lk(mu);
    return nEvents;
}

std::uint64_t
TraceWriter::dropped() const
{
    std::lock_guard<std::mutex> lk(mu);
    return nDropped;
}

} // namespace zbp::obs
