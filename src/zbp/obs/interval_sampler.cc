#include "zbp/obs/interval_sampler.hh"

#include <cinttypes>

#include "zbp/common/log.hh"
#include "zbp/obs/trace_writer.hh"

namespace zbp::obs
{

namespace
{

constexpr std::size_t kFlushBatch = 256; ///< ring capacity before drain

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

} // namespace

IntervalWriter::IntervalWriter(const std::string &path)
    : filePath(path), csv(endsWith(path, ".csv"))
{
    f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        fatal("cannot create interval sidecar '", path, "'");
}

IntervalWriter::~IntervalWriter()
{
    close();
}

void
IntervalWriter::close()
{
    std::lock_guard<std::mutex> lk(mu);
    if (f == nullptr)
        return;
    std::fclose(f);
    f = nullptr;
}

void
IntervalWriter::flush()
{
    std::lock_guard<std::mutex> lk(mu);
    if (f != nullptr)
        std::fflush(f);
}

void
IntervalWriter::writeBatch(const std::string &trace,
                           const std::string &config, unsigned core,
                           const std::vector<const char *> &probes,
                           const std::vector<IntervalRow> &rows)
{
    if (rows.empty())
        return;
    std::lock_guard<std::mutex> lk(mu);
    if (f == nullptr)
        return;
    if (!headerDone) {
        headerDone = true;
        for (const char *p : probes)
            headerProbes.emplace_back(p);
        if (csv) {
            std::fputs("trace,config,core,interval,inst_end,insts", f);
            for (const char *p : probes) {
                std::fputc(',', f);
                std::fputs(p, f);
            }
            std::fputc('\n', f);
        }
    } else if (headerProbes.size() != probes.size()) {
        fatal("interval sidecar '", filePath,
              "': probe set changed mid-file (", headerProbes.size(),
              " vs ", probes.size(), " columns)");
    }
    for (const auto &r : rows) {
        ZBP_ASSERT(r.deltas.size() == probes.size(),
                   "interval row width mismatch");
        if (csv) {
            std::fprintf(f, "%s,%s,%u,%" PRIu64 ",%" PRIu64 ",%" PRIu64,
                         trace.c_str(), config.c_str(), core, r.interval,
                         r.instEnd, r.insts);
            for (std::uint64_t d : r.deltas)
                std::fprintf(f, ",%" PRIu64, d);
            std::fputc('\n', f);
        } else {
            std::string line = "{\"trace\":" + jsonStr(trace) +
                               ",\"config\":" + jsonStr(config) +
                               ",\"core\":" + jsonNum(std::uint64_t{core}) +
                               ",\"interval\":" + jsonNum(r.interval) +
                               ",\"inst_end\":" + jsonNum(r.instEnd) +
                               ",\"insts\":" + jsonNum(r.insts);
            for (std::size_t i = 0; i < probes.size(); ++i) {
                line += ",\"";
                line += probes[i];
                line += "\":";
                line += jsonNum(r.deltas[i]);
            }
            line += "}\n";
            std::fputs(line.c_str(), f);
        }
        ++nRows;
    }
    std::fflush(f);
}

std::uint64_t
IntervalWriter::rowsWritten() const
{
    std::lock_guard<std::mutex> lk(mu);
    return nRows;
}

IntervalSampler::IntervalSampler(IntervalWriter *writer,
                                 std::uint64_t interval_insts)
    : out(writer), step(interval_insts)
{
    ZBP_ASSERT(step >= 1, "interval must be >= 1 instruction");
}

void
IntervalSampler::addProbe(const char *name,
                          std::function<std::uint64_t()> fn)
{
    names.push_back(name);
    probes.push_back(std::move(fn));
}

void
IntervalSampler::beginRun()
{
    prev.resize(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i)
        prev[i] = probes[i]();
    prevInst = 0;
    nextSampleAt = step;
    nIntervals = 0;
    ring.clear();
}

void
IntervalSampler::record(std::uint64_t inst_count)
{
    IntervalRow r;
    r.interval = nIntervals++;
    r.instEnd = inst_count;
    r.insts = inst_count - prevInst;
    r.deltas.resize(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
        const std::uint64_t v = probes[i]();
        r.deltas[i] = v - prev[i];
        prev[i] = v;
    }
    prevInst = inst_count;
    ring.push_back(std::move(r));
    if (ring.size() >= kFlushBatch)
        flush();
}

void
IntervalSampler::sample(std::uint64_t inst_count)
{
    record(inst_count);
    nextSampleAt = inst_count + step;
}

void
IntervalSampler::finish(std::uint64_t inst_count)
{
    if (inst_count > prevInst)
        record(inst_count);
    flush();
}

void
IntervalSampler::flush()
{
    if (out != nullptr && !ring.empty())
        out->writeBatch(traceId, configName, coreId, names, ring);
    ring.clear();
}

} // namespace zbp::obs
