/**
 * @file
 * TraceWriter — Chrome trace-event / Perfetto-loadable timeline output.
 *
 * One writer owns one JSON file of the "JSON Object Format":
 * `{"traceEvents":[...]}`, with complete-duration events (ph "X"),
 * instant events (ph "i") and metadata events (ph "M").  Load the file
 * in chrome://tracing or ui.perfetto.dev.
 *
 * Two tracks, separated by synthetic process ids:
 *  - kPidRunner ("orchestration"): spans stamped in wall-clock
 *    microseconds since the writer was created — job queue/run/retry
 *    phases, gang chunks, CMP windows, trace-cache hits.
 *  - kPidUarch ("microarchitecture"): spans stamped in *simulation
 *    cycles* — bulk-preload searches, arbiter bank waits, fault
 *    injections.  Cycle time and wall time never share a track, so the
 *    unit mismatch is harmless (each process has its own timeline).
 *
 * Zero-overhead contract (same as zbp::fault): components hold a plain
 * `TraceWriter *` that is null unless tracing is enabled; every hook is
 * a single null-pointer test on the hot path.  Emission itself is
 * mutex-serialised and O(event text); a hard event cap (default 1M,
 * ZBP_OBS_TRACE_MAX) bounds file size — events past the cap are counted
 * as dropped, and the count is recorded in the file's metadata.
 */

#ifndef ZBP_OBS_TRACE_WRITER_HH
#define ZBP_OBS_TRACE_WRITER_HH

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace zbp::obs
{

/** One pre-rendered JSON key/value pair for an event's args object:
 * .second must already be valid JSON (use jsonNum / jsonStr). */
using TraceArg = std::pair<const char *, std::string>;
using TraceArgs = std::vector<TraceArg>;

/** Render a number / string as a JSON value for TraceArg. */
std::string jsonNum(std::uint64_t v);
std::string jsonNum(double v);
std::string jsonStr(const std::string &s);

class TraceWriter
{
  public:
    /** Synthetic pids separating the two timelines. */
    static constexpr std::uint32_t kPidRunner = 1; ///< wall-clock µs
    static constexpr std::uint32_t kPidUarch = 2;  ///< simulation cycles

    /** Opens @p path for writing and emits the header + process
     * metadata.  fatal() when the file cannot be created. */
    explicit TraceWriter(const std::string &path,
                         std::uint64_t max_events = 1'000'000);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Write the closing bracket and flush; idempotent.  Called by the
     * destructor; call earlier to validate the file mid-process. */
    void close();

    /** fflush() the open file without writing the footer: events so far
     * survive an abnormal exit (Perfetto tolerates the missing `]`). */
    void flush();

    /** Allocate a timeline lane (a tid) under @p pid and emit its
     * thread_name metadata.  Thread-safe. */
    std::uint32_t newLane(std::uint32_t pid, const std::string &name);

    /** Wall-clock microseconds since this writer was created (the
     * orchestration track's clock). */
    double nowUs() const;

    /** Complete-duration event (ph "X"): [ts, ts+dur] on lane
     * (pid, tid).  @p ts / @p dur are µs on the runner track, cycles on
     * the uarch track. */
    void span(std::uint32_t pid, std::uint32_t tid, const char *cat,
              const std::string &name, double ts, double dur,
              const TraceArgs &args = {});

    /** Instant event (ph "i", thread scope). */
    void instant(std::uint32_t pid, std::uint32_t tid, const char *cat,
                 const std::string &name, double ts,
                 const TraceArgs &args = {});

    const std::string &path() const { return filePath; }
    std::uint64_t events() const;
    std::uint64_t dropped() const;

  private:
    void emit(const std::string &event_json); ///< caller holds no lock
    void emitLocked(const std::string &event_json);
    std::string header(std::uint32_t pid, std::uint32_t tid,
                       const char *ph, const char *cat,
                       const std::string &name, double ts) const;
    static void appendArgs(std::string &ev, const TraceArgs &args);

    std::string filePath;
    std::FILE *f = nullptr;
    mutable std::mutex mu;
    std::chrono::steady_clock::time_point epoch;
    std::uint64_t maxEvents;
    std::uint64_t nEvents = 0;
    std::uint64_t nDropped = 0;
    std::uint32_t nextTid = 1;
    bool closed = false;
};

} // namespace zbp::obs

#endif // ZBP_OBS_TRACE_WRITER_HH
